"""Unit and property tests of the geodesic primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import (
    EARTH_RADIUS_M,
    LatLon,
    destination_point,
    destination_points_arrays,
    haversine_m,
    haversine_m_arrays,
    initial_bearing_deg,
    pairwise_haversine_m,
)

SF = LatLon(37.7749, -122.4194)
LA = LatLon(34.0522, -118.2437)

lat_strategy = st.floats(min_value=-80.0, max_value=80.0)
lon_strategy = st.floats(min_value=-179.0, max_value=179.0)


class TestLatLon:
    def test_valid_construction(self):
        p = LatLon(10.5, -20.25)
        assert p.lat == 10.5
        assert p.lon == -20.25
        assert p.as_tuple() == (10.5, -20.25)

    @pytest.mark.parametrize("lat,lon", [(91, 0), (-90.1, 0), (0, 181), (0, -180.5)])
    def test_out_of_range_rejected(self, lat, lon):
        with pytest.raises(ValueError):
            LatLon(lat, lon)

    def test_poles_and_antimeridian_accepted(self):
        LatLon(90.0, 180.0)
        LatLon(-90.0, -180.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SF.lat = 0.0  # type: ignore[misc]


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(SF, SF) == 0.0

    def test_sf_to_la_reference_value(self):
        # Known great-circle distance ~559 km.
        d = haversine_m(SF, LA)
        assert d == pytest.approx(559_000, rel=0.01)

    def test_one_degree_longitude_at_equator(self):
        d = haversine_m(LatLon(0, 0), LatLon(0, 1))
        assert d == pytest.approx(2 * math.pi * EARTH_RADIUS_M / 360, rel=1e-9)

    def test_symmetry(self):
        assert haversine_m(SF, LA) == pytest.approx(haversine_m(LA, SF))

    def test_method_matches_function(self):
        assert SF.distance_m(LA) == haversine_m(SF, LA)

    def test_vectorised_broadcasting(self):
        lats = np.asarray([37.0, 38.0, 39.0])
        lons = np.asarray([-122.0, -122.0, -122.0])
        d = haversine_m_arrays(SF.lat, SF.lon, lats, lons)
        assert d.shape == (3,)
        for i in range(3):
            expected = haversine_m(SF, LatLon(lats[i], lons[i]))
            assert d[i] == pytest.approx(expected)

    def test_pairwise_matrix_properties(self):
        lats = np.asarray([37.0, 37.5, 38.0, 38.5])
        lons = np.asarray([-122.0, -121.5, -121.0, -120.5])
        m = pairwise_haversine_m(lats, lons)
        assert m.shape == (4, 4)
        assert np.allclose(np.diag(m), 0.0)
        assert np.allclose(m, m.T)

    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy)
    @settings(max_examples=50)
    def test_nonnegative_and_bounded(self, lat1, lon1, lat2, lon2):
        d = haversine_m(LatLon(lat1, lon1), LatLon(lat2, lon2))
        assert 0.0 <= d <= math.pi * EARTH_RADIUS_M + 1.0


class TestBearing:
    def test_due_north(self):
        assert initial_bearing_deg(LatLon(0, 0), LatLon(1, 0)) == pytest.approx(0.0)

    def test_due_east(self):
        assert initial_bearing_deg(LatLon(0, 0), LatLon(0, 1)) == pytest.approx(90.0)

    def test_due_south(self):
        assert initial_bearing_deg(LatLon(1, 0), LatLon(0, 0)) == pytest.approx(180.0)

    def test_due_west(self):
        assert initial_bearing_deg(LatLon(0, 1), LatLon(0, 0)) == pytest.approx(270.0)

    def test_normalised_range(self):
        b = initial_bearing_deg(SF, LA)
        assert 0.0 <= b < 360.0


class TestDestination:
    def test_north_moves_latitude(self):
        p = destination_point(LatLon(0, 0), 0.0, 111_000.0)
        assert p.lat == pytest.approx(1.0, abs=0.01)
        assert p.lon == pytest.approx(0.0, abs=1e-9)

    def test_zero_distance_is_identity(self):
        p = destination_point(SF, 123.0, 0.0)
        assert p.lat == pytest.approx(SF.lat)
        assert p.lon == pytest.approx(SF.lon)

    @given(
        lat_strategy,
        lon_strategy,
        st.floats(min_value=0.0, max_value=359.99),
        st.floats(min_value=1.0, max_value=500_000.0),
    )
    @settings(max_examples=50)
    def test_distance_round_trip(self, lat, lon, bearing, distance):
        origin = LatLon(lat, lon)
        dest = destination_point(origin, bearing, distance)
        assert haversine_m(origin, dest) == pytest.approx(distance, rel=1e-6)

    def test_vectorised_matches_scalar(self):
        bearings = np.asarray([0.0, 90.0, 225.0])
        distances = np.asarray([100.0, 5000.0, 20_000.0])
        lat, lon = destination_points_arrays(
            np.full(3, SF.lat), np.full(3, SF.lon), bearings, distances
        )
        for i in range(3):
            p = destination_point(SF, float(bearings[i]), float(distances[i]))
            assert lat[i] == pytest.approx(p.lat)
            assert lon[i] == pytest.approx(p.lon)

    def test_longitude_normalised(self):
        # Travel east across the antimeridian.
        lat, lon = destination_points_arrays(
            np.asarray([0.0]), np.asarray([179.9]), np.asarray([90.0]),
            np.asarray([50_000.0]),
        )
        assert -180.0 <= float(lon[0]) < 180.0
