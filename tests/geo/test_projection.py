"""Tests of the local tangent-plane and Web-Mercator projections."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import LatLon, LocalProjection, WebMercator, haversine_m

SF = LatLon(37.7749, -122.4194)


class TestLocalProjection:
    def test_reference_maps_to_origin(self):
        proj = LocalProjection(SF)
        x, y = proj.point_to_xy(SF)
        assert x == pytest.approx(0.0, abs=1e-9)
        assert y == pytest.approx(0.0, abs=1e-9)

    def test_round_trip_exact(self):
        proj = LocalProjection(SF)
        lats = SF.lat + np.linspace(-0.2, 0.2, 11)
        lons = SF.lon + np.linspace(-0.2, 0.2, 11)
        x, y = proj.to_xy(lats, lons)
        back_lat, back_lon = proj.to_latlon(x, y)
        assert np.allclose(back_lat, lats, atol=1e-12)
        assert np.allclose(back_lon, lons, atol=1e-12)

    def test_distances_close_to_haversine_city_scale(self):
        proj = LocalProjection(SF)
        other = LatLon(SF.lat + 0.05, SF.lon + 0.05)  # ~7 km away
        x1, y1 = proj.point_to_xy(SF)
        x2, y2 = proj.point_to_xy(other)
        planar = np.hypot(x2 - x1, y2 - y1)
        true = haversine_m(SF, other)
        assert planar == pytest.approx(true, rel=5e-3)

    def test_north_is_positive_y(self):
        proj = LocalProjection(SF)
        _, y = proj.point_to_xy(LatLon(SF.lat + 0.01, SF.lon))
        assert y > 0

    def test_east_is_positive_x(self):
        proj = LocalProjection(SF)
        x, _ = proj.point_to_xy(LatLon(SF.lat, SF.lon + 0.01))
        assert x > 0

    def test_for_data_centres_on_centroid(self):
        lats = np.asarray([37.0, 38.0])
        lons = np.asarray([-122.0, -121.0])
        proj = LocalProjection.for_data(lats, lons)
        assert proj.ref.lat == pytest.approx(37.5)
        assert proj.ref.lon == pytest.approx(-121.5)

    def test_for_data_empty_rejected(self):
        with pytest.raises(ValueError):
            LocalProjection.for_data(np.asarray([]), np.asarray([]))

    def test_scalar_round_trip(self):
        proj = LocalProjection(SF)
        p = proj.point_to_latlon(1500.0, -2500.0)
        x, y = proj.point_to_xy(p)
        assert x == pytest.approx(1500.0)
        assert y == pytest.approx(-2500.0)

    @given(
        st.floats(min_value=-20_000, max_value=20_000),
        st.floats(min_value=-20_000, max_value=20_000),
    )
    @settings(max_examples=50)
    def test_round_trip_property(self, x, y):
        proj = LocalProjection(SF)
        p = proj.point_to_latlon(x, y)
        bx, by = proj.point_to_xy(p)
        assert bx == pytest.approx(x, abs=1e-6)
        assert by == pytest.approx(y, abs=1e-6)


class TestWebMercator:
    def test_equator_origin(self):
        x, y = WebMercator.to_xy(np.asarray([0.0]), np.asarray([0.0]))
        assert float(x[0]) == pytest.approx(0.0, abs=1e-9)
        assert float(y[0]) == pytest.approx(0.0, abs=1e-9)

    def test_round_trip(self):
        lats = np.asarray([37.7749, -33.8688, 51.5074])
        lons = np.asarray([-122.4194, 151.2093, -0.1278])
        x, y = WebMercator.to_xy(lats, lons)
        back_lat, back_lon = WebMercator.to_latlon(x, y)
        assert np.allclose(back_lat, lats, atol=1e-9)
        assert np.allclose(back_lon, lons, atol=1e-9)

    def test_latitude_clipped_at_projection_limit(self):
        x, y = WebMercator.to_xy(np.asarray([89.9]), np.asarray([0.0]))
        assert np.isfinite(y).all()
