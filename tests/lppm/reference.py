"""Reference implementations of the per-trace LPPM protect paths.

These are the pre-columnar (seed) implementations of every registered
mechanism's ``protect_trace``, kept verbatim so the block-parity suite
can prove that ``LPPM.protect_block`` — the vectorised columnar path —
returns **bit-identical** traces: same users, same floats, record for
record.  They are test fixtures, not library code: one trace at a time
on purpose.

``_reference_protect`` reproduces the dataset loop exactly as the seed
``LPPM.protect`` ran it: one ``(seed, user)``-derived generator per
trace, traces in dataset order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.special import lambertw

from repro.geo import LatLon, LocalProjection, SpatialGrid
from repro.mobility import Dataset, Trace


def _reference_trace_rng(seed: int, user: str) -> np.random.Generator:
    """The seed per-trace generator derivation, verbatim."""
    ss = np.random.SeedSequence([seed & 0xFFFFFFFF, *(ord(c) for c in user)])
    return np.random.default_rng(ss)


def _reference_planar_laplace_radii(
    epsilon: float, n: int, rng: np.random.Generator
) -> np.ndarray:
    """The seed polar Laplace sampler: draw and transform in one step."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if n < 0:
        raise ValueError("sample count must be non-negative")
    p = rng.uniform(0.0, 1.0, size=n)
    w = lambertw((p - 1.0) / np.e, k=-1)
    return -(1.0 / epsilon) * (np.real(w) + 1.0)


def _reference_geo_ind(
    trace: Trace, rng: np.random.Generator, epsilon: float
) -> Trace:
    if trace.is_empty:
        return trace
    projection = LocalProjection.for_data(trace.lats, trace.lons)
    x, y = projection.to_xy(trace.lats, trace.lons)
    r = _reference_planar_laplace_radii(epsilon, len(trace), rng)
    theta = rng.uniform(0.0, 2.0 * np.pi, size=len(trace))
    lats, lons = projection.to_latlon(
        x + r * np.cos(theta), y + r * np.sin(theta)
    )
    return trace.with_coords(lats, lons)


def _reference_gaussian(
    trace: Trace, rng: np.random.Generator, sigma_m: float
) -> Trace:
    if trace.is_empty:
        return trace
    projection = LocalProjection.for_data(trace.lats, trace.lons)
    x, y = projection.to_xy(trace.lats, trace.lons)
    dx, dy = rng.normal(0.0, sigma_m, size=(2, len(trace)))
    lats, lons = projection.to_latlon(x + dx, y + dy)
    return trace.with_coords(lats, lons)


def _reference_uniform_disk(
    trace: Trace, rng: np.random.Generator, radius_m: float
) -> Trace:
    if trace.is_empty:
        return trace
    projection = LocalProjection.for_data(trace.lats, trace.lons)
    x, y = projection.to_xy(trace.lats, trace.lons)
    r = radius_m * np.sqrt(rng.uniform(0.0, 1.0, size=len(trace)))
    theta = rng.uniform(0.0, 2.0 * np.pi, size=len(trace))
    lats, lons = projection.to_latlon(
        x + r * np.cos(theta), y + r * np.sin(theta)
    )
    return trace.with_coords(lats, lons)


def _reference_rounding(
    trace: Trace,
    rng: np.random.Generator,
    cell_size_m: float,
    ref: Optional[LatLon] = None,
) -> Trace:
    if trace.is_empty:
        return trace
    anchor = ref or trace.centroid()
    grid = SpatialGrid(LocalProjection(anchor), cell_size_m)
    lats, lons = grid.snap(trace.lats, trace.lons)
    return trace.with_coords(lats, lons)


def _reference_subsampling(
    trace: Trace, rng: np.random.Generator, keep_fraction: float
) -> Trace:
    if len(trace) <= 1:
        return trace
    keep = rng.uniform(size=len(trace)) < keep_fraction
    keep[0] = True
    return Trace(
        trace.user,
        trace.times_s[keep],
        trace.lats[keep],
        trace.lons[keep],
    )


def _reference_time_perturbation(
    trace: Trace, rng: np.random.Generator, sigma_s: float
) -> Trace:
    if trace.is_empty or sigma_s == 0.0:
        return trace
    jitter = rng.normal(0.0, sigma_s, size=len(trace))
    return trace.with_times(trace.times_s + jitter)


# ----------------------------------------------------------------------
# Elastic Geo-I: density prior + density-scaled planar Laplace
# ----------------------------------------------------------------------
class _ReferenceDensity:
    """Seed density map: grid, per-cell counts, median count."""

    def __init__(self, grid: SpatialGrid, counts: Dict[Tuple[int, int], int]):
        self.grid = grid
        self.counts = dict(counts)
        self.median_count = float(np.median(list(counts.values())))


def _reference_density_map(
    dataset: Dataset, cell_size_m: float, ref: Optional[LatLon] = None
) -> _ReferenceDensity:
    """The seed ``DensityMap.from_dataset`` counting loop, verbatim."""
    grid = SpatialGrid.around(ref or dataset.centroid(), cell_size_m)
    counts: Dict[Tuple[int, int], int] = {}
    for trace in dataset.traces:
        if trace.is_empty:
            continue
        cells, cell_counts = np.unique(
            grid.cells_of(trace.lats, trace.lons), axis=0, return_counts=True
        )
        for cell, n in zip(map(tuple, cells.tolist()), cell_counts.tolist()):
            counts[cell] = counts.get(cell, 0) + int(n)
    return _ReferenceDensity(grid, counts)


def _reference_density_at(
    density: _ReferenceDensity, lats, lons
) -> np.ndarray:
    """The seed per-record dict-lookup loop, verbatim."""
    cells = density.grid.cells_of(lats, lons)
    return np.asarray(
        [density.counts.get(tuple(c), 0) for c in cells.tolist()], dtype=float
    )


def _reference_elastic(
    trace: Trace,
    rng: np.random.Generator,
    epsilon: float,
    exponent: float,
    max_scale: float,
    density: _ReferenceDensity,
) -> Trace:
    if trace.is_empty:
        return trace
    counts = _reference_density_at(density, trace.lats, trace.lons)
    ref = max(density.median_count, 1.0)
    scale = np.power(np.maximum(counts, 1.0) / ref, exponent)
    scale = np.clip(scale, 1.0 / max_scale, max_scale)
    eps = epsilon * scale
    projection = LocalProjection.for_data(trace.lats, trace.lons)
    x, y = projection.to_xy(trace.lats, trace.lons)
    unit_r = _reference_planar_laplace_radii(1.0, len(trace), rng)
    r = unit_r / eps
    theta = rng.uniform(0.0, 2.0 * np.pi, size=len(trace))
    lats, lons = projection.to_latlon(
        x + r * np.cos(theta), y + r * np.sin(theta)
    )
    return trace.with_coords(lats, lons)


# ----------------------------------------------------------------------
# Dataset-level reference loops
# ----------------------------------------------------------------------
def _reference_protect(lppm, dataset: Dataset, seed: int) -> Dataset:
    """The seed dataset loop: per-trace generators, mechanism dispatch.

    Dispatches registered mechanisms to the verbatim reference bodies
    above (building the elastic density prior from the dataset exactly
    as the seed ``protect`` did); anything unrecognised falls back to
    the mechanism's own ``protect_trace``, which is the seed behaviour
    for mechanisms this PR did not vectorise (promesse, pipelines).
    """
    params = dict(lppm.params())
    per_trace = None
    name = getattr(lppm, "name", None)
    if name == "geo_ind":
        def per_trace(t, rng):
            return _reference_geo_ind(t, rng, params["epsilon"])
    elif name == "gaussian":
        def per_trace(t, rng):
            return _reference_gaussian(t, rng, params["sigma_m"])
    elif name == "uniform_disk":
        def per_trace(t, rng):
            return _reference_uniform_disk(t, rng, params["radius_m"])
    elif name == "rounding":
        def per_trace(t, rng):
            return _reference_rounding(
                t, rng, params["cell_size_m"], lppm.ref
            )
    elif name == "subsampling":
        def per_trace(t, rng):
            return _reference_subsampling(t, rng, params["keep_fraction"])
    elif name == "time_perturbation":
        def per_trace(t, rng):
            return _reference_time_perturbation(t, rng, params["sigma_s"])
    elif name == "elastic_geo_ind":
        density = (
            _reference_density_map(dataset, lppm.cell_size_m)
            if lppm.density is None
            else _ReferenceDensity(lppm.density.grid, lppm.density.counts)
        )

        def per_trace(t, rng):
            return _reference_elastic(
                t, rng, lppm.epsilon, lppm.exponent, lppm.max_scale, density
            )
    else:
        def per_trace(t, rng):
            return lppm.protect_trace(t, rng)

    protected = [
        per_trace(trace, _reference_trace_rng(seed, trace.user))
        for trace in dataset.traces
    ]
    return Dataset.from_traces(protected)


# ----------------------------------------------------------------------
# Dataset builders shared by the parity tests and the benchmark
# ----------------------------------------------------------------------
def make_block_dataset(
    n_users: int, records_per_user: int, seed: int = 0
) -> Dataset:
    """Synthetic multi-user dataset stressing the per-trace overhead.

    Many users with moderate traces is the shape where the columnar
    path pays off most (the per-trace Python cost dominates the seed
    loop); records cluster around a city centre with realistic jitter.
    """
    rng = np.random.default_rng(seed)
    traces: List[Trace] = []
    for i in range(n_users):
        base_lat = 37.76 + rng.normal(0.0, 0.01)
        base_lon = -122.42 + rng.normal(0.0, 0.01)
        times = np.cumsum(rng.uniform(10.0, 120.0, size=records_per_user))
        lats = base_lat + np.cumsum(rng.normal(0.0, 2e-4, size=records_per_user))
        lons = base_lon + np.cumsum(rng.normal(0.0, 2e-4, size=records_per_user))
        traces.append(Trace(f"user{i:05d}", times, lats, lons))
    return Dataset.from_traces(traces)
