"""Tests of the LPPM interface, registry and seed plumbing."""

import pytest

from repro.lppm import (
    GeoIndistinguishability,
    available_lppms,
    lppm_class,
)


class TestRegistry:
    def test_expected_mechanisms_registered(self):
        names = available_lppms()
        for expected in (
            "geo_ind",
            "gaussian",
            "uniform_disk",
            "rounding",
            "subsampling",
            "time_perturbation",
        ):
            assert expected in names

    def test_lookup_returns_class(self):
        assert lppm_class("geo_ind") is GeoIndistinguishability

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            lppm_class("definitely-not-an-lppm")

    def test_name_attribute_set(self):
        assert GeoIndistinguishability.name == "geo_ind"


class TestSeedPlumbing:
    def test_protect_deterministic_per_seed(self, taxi_dataset):
        lppm = GeoIndistinguishability(0.01)
        a = lppm.protect(taxi_dataset, seed=9)
        b = lppm.protect(taxi_dataset, seed=9)
        for user in taxi_dataset.users:
            assert a[user] == b[user]

    def test_different_seeds_differ(self, taxi_dataset):
        lppm = GeoIndistinguishability(0.01)
        a = lppm.protect(taxi_dataset, seed=1)
        b = lppm.protect(taxi_dataset, seed=2)
        assert any(a[u] != b[u] for u in taxi_dataset.users)

    def test_subset_invariance(self, taxi_dataset):
        # Protecting a subset must equal the subset of the protection:
        # per-user generators must not depend on the other users.
        lppm = GeoIndistinguishability(0.01)
        full = lppm.protect(taxi_dataset, seed=5)
        some_users = taxi_dataset.users[:2]
        partial = lppm.protect(taxi_dataset.subset(some_users), seed=5)
        for user in some_users:
            assert full[user] == partial[user]

    def test_repr_shows_params(self):
        assert "0.01" in repr(GeoIndistinguishability(0.01))
