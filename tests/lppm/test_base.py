"""Tests of the LPPM interface, registry and seed plumbing."""

import pytest

from repro.lppm import (
    GeoIndistinguishability,
    available_lppms,
    lppm_class,
)


class TestRegistry:
    def test_expected_mechanisms_registered(self):
        names = available_lppms()
        for expected in (
            "geo_ind",
            "gaussian",
            "uniform_disk",
            "rounding",
            "subsampling",
            "time_perturbation",
        ):
            assert expected in names

    def test_lookup_returns_class(self):
        assert lppm_class("geo_ind") is GeoIndistinguishability

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            lppm_class("definitely-not-an-lppm")


class TestPrimaryParam:
    def test_known_mechanisms(self):
        from repro.lppm import primary_param

        assert primary_param("geo_ind") == "epsilon"
        assert primary_param("gaussian") == "sigma_m"
        assert primary_param("subsampling") == "keep_fraction"

    def test_every_registered_mechanism_has_one(self):
        from repro.lppm import primary_param

        for name in available_lppms():
            assert primary_param(name)

    def test_varargs_only_constructor_rejected(self, monkeypatch):
        import repro.lppm.base as base

        class KwargsOnly:
            def __init__(self, **kwargs):
                pass

        monkeypatch.setattr(base, "lppm_class", lambda name: KwargsOnly)
        with pytest.raises(ValueError, match="named parameters"):
            base.primary_param("kwargs_only")

    def test_positional_only_first_param_rejected(self, monkeypatch):
        import repro.lppm.base as base

        class PositionalOnly:
            def __init__(self, epsilon, /, scale=1.0):
                pass

        monkeypatch.setattr(base, "lppm_class", lambda name: PositionalOnly)
        # Returning 'scale' here would bind --param to the wrong knob.
        with pytest.raises(ValueError, match="positional-only"):
            base.primary_param("positional_only")

    def test_name_attribute_set(self):
        assert GeoIndistinguishability.name == "geo_ind"


class TestSeedPlumbing:
    def test_protect_deterministic_per_seed(self, taxi_dataset):
        lppm = GeoIndistinguishability(0.01)
        a = lppm.protect(taxi_dataset, seed=9)
        b = lppm.protect(taxi_dataset, seed=9)
        for user in taxi_dataset.users:
            assert a[user] == b[user]

    def test_different_seeds_differ(self, taxi_dataset):
        lppm = GeoIndistinguishability(0.01)
        a = lppm.protect(taxi_dataset, seed=1)
        b = lppm.protect(taxi_dataset, seed=2)
        assert any(a[u] != b[u] for u in taxi_dataset.users)

    def test_subset_invariance(self, taxi_dataset):
        # Protecting a subset must equal the subset of the protection:
        # per-user generators must not depend on the other users.
        lppm = GeoIndistinguishability(0.01)
        full = lppm.protect(taxi_dataset, seed=5)
        some_users = taxi_dataset.users[:2]
        partial = lppm.protect(taxi_dataset.subset(some_users), seed=5)
        for user in some_users:
            assert full[user] == partial[user]

    def test_repr_shows_params(self):
        assert "0.01" in repr(GeoIndistinguishability(0.01))
