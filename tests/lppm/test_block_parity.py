"""Columnar protect parity: block path vs the seed per-trace path.

``LPPM.protect`` without a mapper routes through ``protect_block`` —
for the vectorised mechanisms, batched math over a whole dataset's
concatenated records.  The promise is **bit-identity**: same users,
same floats, record for record, as the seed implementation that
protected one trace at a time.  This suite proves it against verbatim
copies of the seed per-trace implementations (``reference.py``), on a
plain synthetic dataset and on adversarial shapes (empty trace, single
point, duplicate timestamps, an antimeridian straddle, a subsample
that keeps only record 0), and across the engine's execution paths.
"""

import numpy as np
import pytest

from repro import (
    ElasticGeoIndistinguishability,
    GaussianPerturbation,
    GeoIndistinguishability,
    GridRounding,
    Promesse,
    Subsampling,
    TimePerturbation,
    UniformDiskNoise,
    generate_taxi_fleet,
    geo_ind_system,
)
from repro.engine import EvalJob, ProcessPoolBackend, SerialBackend
from repro.geo import LatLon
from repro.lppm import Pipeline, available_lppms
from repro.lppm.elastic import DensityMap
from repro import TaxiFleetConfig
from repro.mobility import Dataset, Trace

from .reference import _reference_protect, make_block_dataset

SEED = 11


def _plain_dataset() -> Dataset:
    return make_block_dataset(12, 40, seed=3)


def _adversarial_dataset() -> Dataset:
    rng = np.random.default_rng(9)
    n = 24
    return Dataset.from_traces([
        Trace("a_empty", [], [], []),
        Trace("b_single", [100.0], [37.7601], [-122.4202]),
        Trace(
            "c_dup_times",
            [0.0, 0.0, 10.0, 10.0, 10.0, 50.0],
            37.76 + rng.normal(0.0, 1e-3, size=6),
            -122.42 + rng.normal(0.0, 1e-3, size=6),
        ),
        # Straddles the antimeridian: the per-trace centroid lands near
        # lon 0, so projected x values are huge — any reassociation of
        # the projection math would show up immediately.
        Trace(
            "d_antimeridian",
            np.arange(8) * 30.0,
            37.76 + rng.normal(0.0, 1e-3, size=8),
            np.asarray([179.5, -179.5] * 4) + rng.normal(0.0, 1e-3, size=8),
        ),
        Trace(
            "e_normal",
            np.cumsum(rng.uniform(5.0, 60.0, size=n)),
            37.75 + np.cumsum(rng.normal(0.0, 2e-4, size=n)),
            -122.41 + np.cumsum(rng.normal(0.0, 2e-4, size=n)),
        ),
    ])


DATASETS = {
    "plain": _plain_dataset,
    "adversarial": _adversarial_dataset,
}

# One configuration per registered mechanism, plus the edge variants
# called out in the issue (fixed rounding ref, prebuilt elastic prior,
# keep-only-record-0 subsampling, zero-sigma time perturbation).
MECHANISMS = {
    "geo_ind": lambda ds: GeoIndistinguishability(0.05),
    "elastic_dataset_prior": lambda ds: ElasticGeoIndistinguishability(
        0.05, cell_size_m=250.0
    ),
    "elastic_prebuilt_prior": lambda ds: ElasticGeoIndistinguishability(
        0.05, cell_size_m=250.0,
        density=DensityMap.from_dataset(ds, 250.0),
    ),
    "gaussian": lambda ds: GaussianPerturbation(25.0),
    "uniform_disk": lambda ds: UniformDiskNoise(60.0),
    "rounding_centroid": lambda ds: GridRounding(150.0),
    "rounding_fixed_ref": lambda ds: GridRounding(
        150.0, ref=LatLon(37.76, -122.42)
    ),
    "subsampling": lambda ds: Subsampling(0.5),
    "subsampling_keep_first_only": lambda ds: Subsampling(1e-9),
    "time_perturbation": lambda ds: TimePerturbation(45.0),
    "time_perturbation_zero_sigma": lambda ds: TimePerturbation(0.0),
    "promesse": lambda ds: Promesse(80.0),
    "pipeline": lambda ds: Pipeline(
        [Subsampling(0.7), GaussianPerturbation(30.0)]
    ),
}


def _assert_datasets_identical(a: Dataset, b: Dataset) -> None:
    assert a.users == b.users
    for user in a.users:
        ta, tb = a[user], b[user]
        assert np.array_equal(ta.times_s, tb.times_s), user
        assert np.array_equal(ta.lats, tb.lats), user
        assert np.array_equal(ta.lons, tb.lons), user


class TestBlockParity:
    def test_every_registered_mechanism_is_covered(self):
        built = {
            factory(_plain_dataset()).name for factory in MECHANISMS.values()
        }
        assert set(available_lppms()) <= built

    @pytest.mark.parametrize("dataset_name", sorted(DATASETS))
    @pytest.mark.parametrize("mech_name", sorted(MECHANISMS))
    def test_block_equals_seed_reference(self, mech_name, dataset_name):
        dataset = DATASETS[dataset_name]()
        lppm = MECHANISMS[mech_name](dataset)
        block_out = lppm.protect(dataset, seed=SEED)
        ref_out = _reference_protect(lppm, dataset, seed=SEED)
        _assert_datasets_identical(block_out, ref_out)

    @pytest.mark.parametrize("mech_name", sorted(MECHANISMS))
    def test_mapper_path_equals_block_path(self, mech_name):
        # The engine's trace-level fan-out uses the mapper hook; it must
        # agree with the block path float for float.
        dataset = _adversarial_dataset()
        lppm = MECHANISMS[mech_name](dataset)
        block_out = lppm.protect(dataset, seed=SEED)
        mapped_out = lppm.protect(dataset, seed=SEED, mapper=map)
        _assert_datasets_identical(block_out, mapped_out)

    def test_subsampling_edge_keeps_exactly_record_zero(self):
        dataset = _plain_dataset()
        out = Subsampling(1e-9).protect(dataset, seed=SEED)
        for user in dataset.users:
            assert len(out[user]) == 1
            assert out[user].times_s[0] == dataset[user].times_s[0]

    def test_columns_memoised_and_excluded_from_pickle(self):
        import pickle

        dataset = _plain_dataset()
        assert dataset.columns() is dataset.columns()
        clone = pickle.loads(pickle.dumps(dataset))
        _assert_datasets_identical(dataset, clone)
        # The rebuilt block matches the original's content.
        assert np.array_equal(clone.columns().lats, dataset.columns().lats)


class TestEngineSweepParity:
    def test_process_sweep_equals_serial_block_path(self):
        # Serial execution protects through the block path; the process
        # pool protects in workers (job level) — results must match
        # float for float across a multi-seed sweep.
        fleet = generate_taxi_fleet(
            TaxiFleetConfig(n_cabs=3, shift_hours=1.0, seed=5)
        )
        system = geo_ind_system()
        jobs = [
            EvalJob.make({"epsilon": eps}, seed=s)
            for eps in (0.005, 0.02)
            for s in (0, 1)
        ]
        serial = SerialBackend().run(system, fleet, jobs)
        backend = ProcessPoolBackend(max_workers=2)
        try:
            parallel = backend.run(system, fleet, jobs)
        finally:
            backend.close()
        assert serial == parallel
