"""Tests of Elastic Geo-Indistinguishability and its density map."""

import numpy as np
import pytest

from repro.geo import LatLon, haversine_m_arrays
from repro.lppm import DensityMap, ElasticGeoIndistinguishability
from repro.mobility import Dataset, Trace

SF = LatLon(37.7749, -122.4194)


def _cluster_trace(user: str, n_dense: int = 200, n_sparse: int = 5) -> Trace:
    """Many records downtown, a few far out in a quiet corner."""
    lats = np.concatenate([
        np.full(n_dense, SF.lat), np.full(n_sparse, SF.lat + 0.05),
    ])
    lons = np.concatenate([
        np.full(n_dense, SF.lon), np.full(n_sparse, SF.lon + 0.05),
    ])
    return Trace(user, np.arange(n_dense + n_sparse, dtype=float) * 60.0,
                 lats, lons)


@pytest.fixture
def clustered_dataset() -> Dataset:
    return Dataset.from_traces([
        _cluster_trace("u0"), _cluster_trace("u1"), _cluster_trace("u2"),
    ])


class TestDensityMap:
    def test_counts_all_records(self, clustered_dataset):
        dmap = DensityMap.from_dataset(clustered_dataset, cell_size_m=400.0)
        assert sum(dmap.counts.values()) == clustered_dataset.n_records

    def test_density_lookup(self, clustered_dataset):
        dmap = DensityMap.from_dataset(clustered_dataset, cell_size_m=400.0)
        dense = dmap.density_at(np.asarray([SF.lat]), np.asarray([SF.lon]))
        sparse = dmap.density_at(
            np.asarray([SF.lat + 0.05]), np.asarray([SF.lon + 0.05])
        )
        nowhere = dmap.density_at(np.asarray([SF.lat - 0.08]),
                                  np.asarray([SF.lon - 0.08]))
        assert dense[0] > sparse[0] > 0
        assert nowhere[0] == 0

    def test_empty_rejected(self):
        from repro.geo import SpatialGrid

        with pytest.raises(ValueError):
            DensityMap(SpatialGrid.around(SF), {})


class TestElasticGeoInd:
    def test_validation(self):
        with pytest.raises(ValueError):
            ElasticGeoIndistinguishability(0.0)
        with pytest.raises(ValueError):
            ElasticGeoIndistinguishability(0.01, exponent=1.5)
        with pytest.raises(ValueError):
            ElasticGeoIndistinguishability(0.01, max_scale=0.5)

    def test_params(self):
        lppm = ElasticGeoIndistinguishability(0.02, exponent=0.3)
        assert lppm.params() == {"epsilon": 0.02, "exponent": 0.3}

    def test_per_point_epsilons_follow_density(self, clustered_dataset):
        dmap = DensityMap.from_dataset(clustered_dataset, cell_size_m=400.0)
        lppm = ElasticGeoIndistinguishability(0.01, density=dmap)
        trace = clustered_dataset["u0"]
        eps = lppm.epsilons_for(trace, dmap)
        # Dense downtown points get higher effective epsilon (less noise)
        # than the sparse far-out points.
        assert eps[0] > eps[-1]
        assert np.all(eps >= 0.01 / lppm.max_scale - 1e-12)
        assert np.all(eps <= 0.01 * lppm.max_scale + 1e-12)

    def test_exponent_zero_reduces_to_geo_ind_noise_scale(self, clustered_dataset):
        dmap = DensityMap.from_dataset(clustered_dataset)
        lppm = ElasticGeoIndistinguishability(0.01, exponent=0.0, density=dmap)
        eps = lppm.epsilons_for(clustered_dataset["u0"], dmap)
        assert np.allclose(eps, 0.01)

    def test_noise_smaller_in_dense_areas(self, clustered_dataset):
        lppm = ElasticGeoIndistinguishability(0.01, max_scale=8.0)
        protected = lppm.protect(clustered_dataset, seed=0)
        a = clustered_dataset["u0"]
        p = protected["u0"]
        d = haversine_m_arrays(a.lats, a.lons, p.lats, p.lons)
        dense_err = float(np.mean(d[:200]))
        sparse_err = float(np.mean(d[200:]))
        assert dense_err < sparse_err

    def test_deterministic_by_seed(self, clustered_dataset):
        lppm = ElasticGeoIndistinguishability(0.01)
        a = lppm.protect(clustered_dataset, seed=3)
        b = lppm.protect(clustered_dataset, seed=3)
        for user in clustered_dataset.users:
            assert a[user] == b[user]

    def test_registry_name(self):
        from repro.lppm import lppm_class

        assert lppm_class("elastic_geo_ind") is ElasticGeoIndistinguishability

    def test_empty_trace_passthrough(self, rng, clustered_dataset):
        dmap = DensityMap.from_dataset(clustered_dataset)
        lppm = ElasticGeoIndistinguishability(0.01, density=dmap)
        empty = Trace("u", [], [], [])
        assert lppm.protect_trace(empty, rng) is empty
