"""Tests of the planar Laplace (Geo-Indistinguishability) mechanism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import haversine_m_arrays
from repro.lppm import GeoIndistinguishability, planar_laplace_radii


class TestRadii:
    def test_positive_and_finite(self, rng):
        r = planar_laplace_radii(0.01, 10_000, rng)
        assert np.all(r >= 0)
        assert np.all(np.isfinite(r))

    def test_mean_is_two_over_epsilon(self, rng):
        # The radius is Gamma(2, 1/eps): mean 2/eps.
        eps = 0.01
        r = planar_laplace_radii(eps, 200_000, rng)
        assert np.mean(r) == pytest.approx(2.0 / eps, rel=0.02)

    def test_analytic_cdf_match(self, rng):
        # CDF of the polar Laplace radius: 1 - (1 + eps*r) * exp(-eps*r).
        eps = 0.05
        r = np.sort(planar_laplace_radii(eps, 50_000, rng))
        probe = np.quantile(r, [0.1, 0.5, 0.9])
        empirical = np.searchsorted(r, probe) / r.size
        analytic = 1.0 - (1.0 + eps * probe) * np.exp(-eps * probe)
        assert np.allclose(empirical, analytic, atol=0.02)

    def test_scaling_in_epsilon(self, rng):
        # Radii at eps and 10*eps differ by exactly a factor 10 in law.
        r1 = planar_laplace_radii(0.001, 100_000, np.random.default_rng(0))
        r2 = planar_laplace_radii(0.01, 100_000, np.random.default_rng(0))
        assert np.allclose(r1, 10.0 * r2)

    def test_invalid_arguments_rejected(self, rng):
        with pytest.raises(ValueError):
            planar_laplace_radii(0.0, 10, rng)
        with pytest.raises(ValueError):
            planar_laplace_radii(0.01, -1, rng)

    @given(st.floats(min_value=1e-4, max_value=1.0))
    @settings(max_examples=25)
    def test_radii_valid_across_epsilon_range(self, eps):
        r = planar_laplace_radii(eps, 100, np.random.default_rng(1))
        assert np.all(np.isfinite(r))
        assert np.all(r >= 0)


class TestMechanism:
    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            GeoIndistinguishability(0.0)
        with pytest.raises(ValueError):
            GeoIndistinguishability(-0.1)

    def test_params_and_mean_error(self):
        lppm = GeoIndistinguishability(0.02)
        assert lppm.params() == {"epsilon": 0.02}
        assert lppm.mean_error_m == pytest.approx(100.0)

    def test_preserves_structure(self, simple_trace, rng):
        out = GeoIndistinguishability(0.01).protect_trace(simple_trace, rng)
        assert out.user == simple_trace.user
        assert len(out) == len(simple_trace)
        assert np.array_equal(out.times_s, simple_trace.times_s)

    def test_moves_points(self, simple_trace, rng):
        out = GeoIndistinguishability(0.01).protect_trace(simple_trace, rng)
        assert not np.array_equal(out.lats, simple_trace.lats)

    def test_empirical_displacement_matches_theory(self, taxi_dataset):
        eps = 0.01
        lppm = GeoIndistinguishability(eps)
        protected = lppm.protect(taxi_dataset, seed=0)
        displacements = []
        for user in taxi_dataset.users:
            a, p = taxi_dataset[user], protected[user]
            displacements.append(
                haversine_m_arrays(a.lats, a.lons, p.lats, p.lons)
            )
        mean_disp = float(np.mean(np.concatenate(displacements)))
        assert mean_disp == pytest.approx(2.0 / eps, rel=0.1)

    def test_high_epsilon_is_nearly_identity(self, simple_trace, rng):
        out = GeoIndistinguishability(10.0).protect_trace(simple_trace, rng)
        moved = haversine_m_arrays(
            simple_trace.lats, simple_trace.lons, out.lats, out.lons
        )
        assert np.all(moved < 50.0)  # mean error is 0.2 m at eps=10

    def test_empty_trace_passthrough(self, rng):
        from repro.mobility import Trace

        empty = Trace("u", [], [], [])
        assert GeoIndistinguishability(0.01).protect_trace(empty, rng) is empty
