"""Tests of the Gaussian and uniform-disk noise mechanisms."""

import numpy as np
import pytest

from repro.geo import haversine_m_arrays
from repro.lppm import GaussianPerturbation, UniformDiskNoise
from repro.mobility import Dataset, Trace


@pytest.fixture
def stationary_dataset() -> Dataset:
    # Many records at one spot: ideal for estimating noise statistics.
    n = 5000
    return Dataset.from_traces([
        Trace("u", np.arange(n, dtype=float), np.full(n, 37.7749),
              np.full(n, -122.4194))
    ])


class TestGaussian:
    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            GaussianPerturbation(0.0)

    def test_displacement_statistics(self, stationary_dataset):
        sigma = 100.0
        protected = GaussianPerturbation(sigma).protect(stationary_dataset, seed=0)
        a = stationary_dataset["u"]
        p = protected["u"]
        d = haversine_m_arrays(a.lats, a.lons, p.lats, p.lons)
        # Isotropic 2D Gaussian: displacement is Rayleigh(sigma),
        # mean sigma*sqrt(pi/2).
        assert float(np.mean(d)) == pytest.approx(
            sigma * np.sqrt(np.pi / 2), rel=0.05
        )

    def test_params(self):
        assert GaussianPerturbation(50.0).params() == {"sigma_m": 50.0}


class TestUniformDisk:
    def test_radius_validation(self):
        with pytest.raises(ValueError):
            UniformDiskNoise(-1.0)

    def test_displacement_bounded_by_radius(self, stationary_dataset):
        radius = 150.0
        protected = UniformDiskNoise(radius).protect(stationary_dataset, seed=0)
        a = stationary_dataset["u"]
        p = protected["u"]
        d = haversine_m_arrays(a.lats, a.lons, p.lats, p.lons)
        assert np.all(d <= radius * 1.01)

    def test_displacement_mean_of_uniform_disk(self, stationary_dataset):
        radius = 150.0
        protected = UniformDiskNoise(radius).protect(stationary_dataset, seed=0)
        a = stationary_dataset["u"]
        p = protected["u"]
        d = haversine_m_arrays(a.lats, a.lons, p.lats, p.lons)
        # Mean distance from centre of a uniform disk is 2R/3.
        assert float(np.mean(d)) == pytest.approx(2 * radius / 3, rel=0.05)

    def test_empty_trace_passthrough(self, rng):
        empty = Trace("u", [], [], [])
        assert UniformDiskNoise(10.0).protect_trace(empty, rng) is empty
