"""Tests of LPPM composition."""

import numpy as np
import pytest

from repro.lppm import (
    GaussianPerturbation,
    GeoIndistinguishability,
    GridRounding,
    Pipeline,
    Subsampling,
)
from repro.geo import LatLon


class TestPipeline:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_single_stage_equivalent_shape(self, simple_trace, rng):
        single = Pipeline([GaussianPerturbation(50.0)])
        out = single.protect_trace(simple_trace, rng)
        assert len(out) == len(simple_trace)

    def test_stage_order_applied(self, simple_trace, rng):
        # Rounding last: output must sit on grid centres regardless of noise.
        ref = LatLon(37.7749, -122.4194)
        pipe = Pipeline([GaussianPerturbation(50.0), GridRounding(200.0, ref=ref)])
        out = pipe.protect_trace(simple_trace, rng)
        again = GridRounding(200.0, ref=ref).protect_trace(
            out, np.random.default_rng(0)
        )
        assert np.allclose(out.lats, again.lats, atol=1e-9)

    def test_subsample_then_noise_reduces_count(self, rng):
        from repro.mobility import Trace

        n = 500
        t = Trace("u", np.arange(n, dtype=float), np.full(n, 37.0), np.full(n, -122.0))
        pipe = Pipeline([Subsampling(0.3), GeoIndistinguishability(0.01)])
        out = pipe.protect_trace(t, rng)
        assert 0 < len(out) < n

    def test_params_namespaced(self):
        pipe = Pipeline([
            Subsampling(0.5),
            GeoIndistinguishability(0.01),
        ])
        params = pipe.params()
        assert params["stage0.subsampling.keep_fraction"] == 0.5
        assert params["stage1.geo_ind.epsilon"] == 0.01

    def test_deterministic_given_generator_state(self, simple_trace):
        pipe = Pipeline([GaussianPerturbation(20.0), GeoIndistinguishability(0.1)])
        a = pipe.protect_trace(simple_trace, np.random.default_rng(7))
        b = pipe.protect_trace(simple_trace, np.random.default_rng(7))
        assert a == b
