"""Tests of the Promesse speed-smoothing mechanism."""

import numpy as np
import pytest

from repro.attacks import extract_pois
from repro.lppm import Promesse, resample_polyline
from repro.metrics import AreaCoverageUtility, PoiRetrievalPrivacy
from repro.mobility import Trace


class TestResamplePolyline:
    def test_straight_line_spacing(self):
        x = np.asarray([0.0, 1000.0])
        y = np.asarray([0.0, 0.0])
        pts = resample_polyline(x, y, 100.0)
        assert pts.shape == (11, 2)
        assert np.allclose(np.diff(pts[:, 0]), 100.0)
        assert np.allclose(pts[:, 1], 0.0)

    def test_multi_segment_path(self):
        x = np.asarray([0.0, 300.0, 300.0])
        y = np.asarray([0.0, 0.0, 400.0])
        pts = resample_polyline(x, y, 100.0)
        # Total length 700 m -> 8 points (0..700 inclusive).
        assert pts.shape[0] == 8
        steps = np.hypot(np.diff(pts[:, 0]), np.diff(pts[:, 1]))
        assert np.all(steps <= 100.0 * np.sqrt(2) + 1e-6)

    def test_stationary_points_collapse(self):
        # Dwelling (repeated coordinates) adds no path length, hence no
        # resampled points — the core of Promesse's POI protection.
        x = np.asarray([0.0] * 50 + [500.0])
        y = np.zeros(51)
        pts = resample_polyline(x, y, 100.0)
        assert pts.shape[0] == 6

    def test_empty_input(self):
        assert resample_polyline(np.asarray([]), np.asarray([]), 10.0).shape == (0, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            resample_polyline(np.zeros(3), np.zeros(3), 0.0)
        with pytest.raises(ValueError):
            resample_polyline(np.zeros(3), np.zeros(2), 10.0)


class TestPromesse:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            Promesse(0.0)

    def test_params(self):
        assert Promesse(100.0).params() == {"alpha_m": 100.0}

    def test_deterministic(self, taxi_dataset):
        a = Promesse(100.0).protect(taxi_dataset, seed=1)
        b = Promesse(100.0).protect(taxi_dataset, seed=2)
        for user in taxi_dataset.users:
            assert a[user] == b[user]  # no randomness involved

    def test_constant_apparent_speed(self, taxi_dataset):
        protected = Promesse(100.0).protect(taxi_dataset, seed=0)
        trace = protected[protected.users[0]]
        intervals = np.diff(trace.times_s)
        assert np.allclose(intervals, intervals[0])

    def test_time_span_preserved(self, taxi_dataset):
        user = taxi_dataset.users[0]
        protected = Promesse(100.0).protect(taxi_dataset, seed=0)
        assert protected[user].times_s[0] == taxi_dataset[user].times_s[0]
        assert protected[user].times_s[-1] == pytest.approx(
            taxi_dataset[user].times_s[-1]
        )

    def test_hides_pois_on_moving_workload(self, taxi_dataset):
        # Taxis move most of the shift: apparent speed stays far above
        # the attack's detection floor and dwell evidence vanishes.
        protected = Promesse(100.0).protect(taxi_dataset, seed=0)
        privacy = PoiRetrievalPrivacy().evaluate(taxi_dataset, protected)
        assert privacy <= 0.1, "speed smoothing must hide dwell-based POIs"

    def test_dwell_heavy_workload_hits_speed_floor(self, commuter_dataset):
        # Commuters dwell ~16h/day: the smoothed apparent speed drops
        # below roam/min_dwell and the attack finds stop clusters all
        # along the route (the documented Promesse caveat).
        protected = Promesse(100.0).protect(commuter_dataset, seed=0)
        floor = 200.0 / 900.0  # roam_m / min_dwell_s of the default attack
        slow_users = [
            u for u in commuter_dataset.users
            if protected[u].length_m / protected[u].duration_s < floor
        ]
        assert slow_users, "fixture no longer contains a dwell-heavy user"
        from repro.attacks import extract_pois

        user = slow_users[0]
        assert len(extract_pois(protected[user])) > len(
            extract_pois(commuter_dataset[user])
        )

    def test_preserves_coverage(self, taxi_dataset):
        protected = Promesse(100.0).protect(taxi_dataset, seed=0)
        utility = AreaCoverageUtility(cell_size_m=600.0).evaluate(
            taxi_dataset, protected
        )
        assert utility >= 0.6, "the path itself must survive"

    def test_short_trace_passthrough(self, rng):
        t = Trace("u", [0.0], [37.0], [-122.0])
        assert Promesse(100.0).protect_trace(t, rng) is t

    def test_coarser_alpha_fewer_points(self, taxi_dataset):
        user = taxi_dataset.users[0]
        fine = Promesse(50.0).protect(taxi_dataset, seed=0)[user]
        coarse = Promesse(500.0).protect(taxi_dataset, seed=0)[user]
        assert len(coarse) < len(fine)
