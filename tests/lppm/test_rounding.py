"""Tests of the grid-rounding (spatial cloaking) mechanism."""

import numpy as np
import pytest

from repro.geo import LatLon, haversine_m_arrays
from repro.lppm import GridRounding


class TestGridRounding:
    def test_cell_size_validation(self):
        with pytest.raises(ValueError):
            GridRounding(0.0)

    def test_deterministic(self, simple_trace, rng):
        lppm = GridRounding(200.0, ref=LatLon(37.7749, -122.4194))
        a = lppm.protect_trace(simple_trace, np.random.default_rng(1))
        b = lppm.protect_trace(simple_trace, np.random.default_rng(999))
        assert a == b  # randomness is unused

    def test_idempotent_with_fixed_ref(self, simple_trace, rng):
        lppm = GridRounding(200.0, ref=LatLon(37.7749, -122.4194))
        once = lppm.protect_trace(simple_trace, rng)
        twice = lppm.protect_trace(once, rng)
        assert np.allclose(once.lats, twice.lats, atol=1e-9)
        assert np.allclose(once.lons, twice.lons, atol=1e-9)

    def test_displacement_bounded_by_half_diagonal(self, simple_trace, rng):
        cell = 300.0
        out = GridRounding(cell, ref=LatLon(37.7749, -122.4194)).protect_trace(
            simple_trace, rng
        )
        d = haversine_m_arrays(
            simple_trace.lats, simple_trace.lons, out.lats, out.lons
        )
        assert np.all(d <= cell * np.sqrt(2) / 2 + 1.0)

    def test_collapses_nearby_points(self, simple_trace, rng):
        # All four fixture points are within ~35 m: one big cell merges them.
        out = GridRounding(5000.0, ref=LatLon(37.7749, -122.4194)).protect_trace(
            simple_trace, rng
        )
        assert np.unique(out.lats).size == 1
        assert np.unique(out.lons).size == 1

    def test_default_ref_uses_trace_centroid(self, simple_trace, rng):
        out = GridRounding(200.0).protect_trace(simple_trace, rng)
        assert len(out) == len(simple_trace)

    def test_params(self):
        assert GridRounding(250.0).params() == {"cell_size_m": 250.0}
