"""Tests of the subsampling and time-perturbation mechanisms."""

import numpy as np
import pytest

from repro.lppm import Subsampling, TimePerturbation
from repro.mobility import Trace


@pytest.fixture
def long_trace() -> Trace:
    n = 2000
    return Trace(
        "u",
        np.arange(n, dtype=float) * 30.0,
        np.full(n, 37.7),
        np.full(n, -122.4),
    )


class TestSubsampling:
    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            Subsampling(0.0)
        with pytest.raises(ValueError):
            Subsampling(1.2)

    def test_keeps_expected_fraction(self, long_trace, rng):
        out = Subsampling(0.25).protect_trace(long_trace, rng)
        assert len(out) == pytest.approx(0.25 * len(long_trace), rel=0.15)

    def test_keep_all_is_identity(self, long_trace, rng):
        out = Subsampling(1.0).protect_trace(long_trace, rng)
        assert len(out) == len(long_trace)

    def test_first_record_always_kept(self, long_trace):
        for seed in range(5):
            out = Subsampling(0.05).protect_trace(
                long_trace, np.random.default_rng(seed)
            )
            assert out.times_s[0] == long_trace.times_s[0]
            assert len(out) >= 1

    def test_kept_records_are_originals(self, long_trace, rng):
        out = Subsampling(0.5).protect_trace(long_trace, rng)
        original_times = set(long_trace.times_s.tolist())
        assert all(t in original_times for t in out.times_s.tolist())

    def test_single_record_passthrough(self, rng):
        t = Trace("u", [0.0], [37.0], [-122.0])
        assert Subsampling(0.01).protect_trace(t, rng) is t


class TestTimePerturbation:
    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            TimePerturbation(-1.0)

    def test_zero_sigma_is_identity(self, long_trace, rng):
        assert TimePerturbation(0.0).protect_trace(long_trace, rng) is long_trace

    def test_coordinates_preserved_as_multiset(self, simple_trace, rng):
        out = TimePerturbation(120.0).protect_trace(simple_trace, rng)
        assert sorted(out.lats.tolist()) == sorted(simple_trace.lats.tolist())
        assert sorted(out.lons.tolist()) == sorted(simple_trace.lons.tolist())

    def test_times_sorted_after_jitter(self, simple_trace, rng):
        out = TimePerturbation(500.0).protect_trace(simple_trace, rng)
        assert np.all(np.diff(out.times_s) >= 0)

    def test_jitter_magnitude(self, long_trace, rng):
        sigma = 60.0
        out = TimePerturbation(sigma).protect_trace(long_trace, rng)
        # Same count, shifted times: std of (sorted jittered - original)
        # stays on the order of sigma.
        delta = out.times_s - long_trace.times_s
        assert 0.0 < float(np.std(delta)) < 4 * sigma
