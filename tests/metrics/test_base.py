"""Tests of the metric interface, registry and record pairing."""

import numpy as np
import pytest

from repro.metrics import (
    AreaCoverageUtility,
    PoiRetrievalPrivacy,
    available_metrics,
    metric_class,
    paired_coords,
)
from repro.mobility import Dataset, Trace


class TestRegistry:
    def test_expected_metrics_registered(self):
        names = available_metrics()
        for expected in (
            "poi_retrieval",
            "distortion",
            "reidentification",
            "area_coverage",
            "same_cell",
            "spatial_distortion",
        ):
            assert expected in names

    def test_lookup(self):
        assert metric_class("poi_retrieval") is PoiRetrievalPrivacy
        assert metric_class("area_coverage") is AreaCoverageUtility

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            metric_class("nope")

    def test_kinds(self):
        assert PoiRetrievalPrivacy.kind == "privacy"
        assert AreaCoverageUtility.kind == "utility"


class TestPairedCoords:
    def test_equal_length_positional(self, simple_trace):
        a_lat, a_lon, p_lat, p_lon = paired_coords(simple_trace, simple_trace)
        assert np.array_equal(a_lat, simple_trace.lats)
        assert np.array_equal(p_lat, simple_trace.lats)

    def test_subsampled_aligned_by_time(self):
        actual = Trace(
            "u", [0.0, 60.0, 120.0, 180.0], [37.0, 37.1, 37.2, 37.3], [-122.0] * 4
        )
        protected = Trace("u", [58.0, 178.0], [39.0, 38.0], [-122.0] * 2)
        a_lat, a_lon, p_lat, p_lon = paired_coords(actual, protected)
        assert len(a_lat) == 2
        # 58 s is nearest to the 60 s record, 178 s to the 180 s one.
        assert a_lat.tolist() == [37.1, 37.3]
        assert p_lat.tolist() == [39.0, 38.0]

    def test_empty_rejected(self, simple_trace):
        with pytest.raises(ValueError):
            paired_coords(simple_trace, Trace("u", [], [], []))


class TestCommonUsers:
    def test_disjoint_datasets_rejected(self, simple_trace):
        metric = AreaCoverageUtility()
        a = Dataset.from_traces([simple_trace])
        b = Dataset.from_traces([simple_trace.renamed("bob")])
        with pytest.raises(ValueError):
            metric.evaluate(a, b)

    def test_partial_overlap_uses_intersection(self, simple_trace):
        metric = AreaCoverageUtility()
        a = Dataset.from_traces([simple_trace, simple_trace.renamed("bob")])
        b = Dataset.from_traces([simple_trace])
        assert metric.evaluate(a, b) == 1.0
