"""Tests of the heatmap-preservation utility."""

import pytest

from repro.geo import LatLon, SpatialGrid
from repro.lppm import GaussianPerturbation, GeoIndistinguishability, Subsampling
from repro.metrics import (
    HeatmapPreservationUtility,
    jensen_shannon_divergence,
    visit_distribution,
)
from repro.mobility import Dataset

SF = LatLon(37.7749, -122.4194)


class TestVisitDistribution:
    def test_sums_to_one(self, taxi_dataset):
        grid = SpatialGrid.around(taxi_dataset.centroid(), 600.0)
        dist = visit_distribution(taxi_dataset, grid)
        assert sum(dist.values()) == pytest.approx(1.0)
        assert all(v > 0 for v in dist.values())

    def test_empty_dataset_rejected(self):
        grid = SpatialGrid.around(SF, 600.0)
        with pytest.raises(ValueError):
            visit_distribution(Dataset({}), grid)


class TestJsd:
    def test_identical_is_zero(self):
        p = {(0, 0): 0.5, (1, 1): 0.5}
        assert jensen_shannon_divergence(p, dict(p)) == 0.0

    def test_disjoint_is_one(self):
        p = {(0, 0): 1.0}
        q = {(9, 9): 1.0}
        assert jensen_shannon_divergence(p, q) == pytest.approx(1.0)

    def test_symmetric(self):
        p = {(0, 0): 0.7, (1, 0): 0.3}
        q = {(0, 0): 0.2, (2, 2): 0.8}
        assert jensen_shannon_divergence(p, q) == pytest.approx(
            jensen_shannon_divergence(q, p)
        )

    def test_bounded(self):
        p = {(0, 0): 0.9, (5, 5): 0.1}
        q = {(0, 0): 0.1, (5, 5): 0.9}
        assert 0.0 < jensen_shannon_divergence(p, q) < 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jensen_shannon_divergence({}, {(0, 0): 1.0})


class TestHeatmapUtility:
    def test_identity_is_one(self, taxi_dataset):
        metric = HeatmapPreservationUtility()
        assert metric.evaluate(taxi_dataset, taxi_dataset) == pytest.approx(1.0)

    def test_monotone_in_epsilon(self, taxi_dataset):
        metric = HeatmapPreservationUtility()
        values = []
        for eps in (1e-4, 1e-2, 1.0):
            protected = GeoIndistinguishability(eps).protect(taxi_dataset, seed=0)
            values.append(metric.evaluate(taxi_dataset, protected))
        assert values[0] < values[1] < values[2]

    def test_subsampling_preserves_the_aggregate(self, taxi_dataset):
        # The crowd's heatmap survives heavy subsampling far better
        # than 2 km noise — the metric's distinguishing judgement.
        sub = Subsampling(0.3).protect(taxi_dataset, seed=0)
        noisy = GaussianPerturbation(2000.0).protect(taxi_dataset, seed=0)
        metric = HeatmapPreservationUtility()
        assert metric.evaluate(taxi_dataset, sub) > metric.evaluate(
            taxi_dataset, noisy
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            HeatmapPreservationUtility(cell_size_m=0.0)
