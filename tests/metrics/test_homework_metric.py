"""Tests of the home-identification privacy metric."""

import pytest

from repro.lppm import GaussianPerturbation, GeoIndistinguishability
from repro.metrics import HomeIdentificationPrivacy, metric_class


class TestHomeIdentification:
    def test_identity_fully_exposed(self, commuter_dataset):
        metric = HomeIdentificationPrivacy()
        assert metric.evaluate(commuter_dataset, commuter_dataset) == 1.0

    def test_heavy_noise_hides_homes(self, commuter_dataset):
        protected = GaussianPerturbation(20_000.0).protect(commuter_dataset, seed=0)
        metric = HomeIdentificationPrivacy()
        assert metric.evaluate(commuter_dataset, protected) <= 0.4

    def test_monotone_in_epsilon(self, commuter_dataset):
        metric = HomeIdentificationPrivacy()
        values = []
        for eps in (1e-4, 1e-2, 1.0):
            protected = GeoIndistinguishability(eps).protect(
                commuter_dataset, seed=0
            )
            values.append(metric.evaluate(commuter_dataset, protected))
        assert values[0] <= values[2]
        assert values[2] >= 0.8

    def test_per_user_values_binary(self, commuter_dataset):
        per_user = HomeIdentificationPrivacy().evaluate_per_user(
            commuter_dataset, commuter_dataset
        )
        assert per_user
        assert set(per_user.values()) <= {0.0, 1.0}

    def test_registered(self):
        assert metric_class("home_identification") is HomeIdentificationPrivacy

    def test_validation(self):
        with pytest.raises(ValueError):
            HomeIdentificationPrivacy(match_m=0.0)
