"""Tests of the privacy metrics."""

import pytest

import numpy as np

from repro.lppm import GaussianPerturbation, GeoIndistinguishability
from repro.metrics import (
    DistortionPrivacy,
    LogDistortionPrivacy,
    PoiRetrievalPrivacy,
    ReidentificationPrivacy,
)


class TestPoiRetrieval:
    def test_identity_protection_fully_exposed(self, commuter_dataset):
        metric = PoiRetrievalPrivacy()
        assert metric.evaluate(commuter_dataset, commuter_dataset) == 1.0

    def test_heavy_noise_hides_pois(self, commuter_dataset):
        protected = GaussianPerturbation(20_000.0).protect(commuter_dataset, seed=0)
        metric = PoiRetrievalPrivacy()
        assert metric.evaluate(commuter_dataset, protected) <= 0.2

    def test_monotone_in_epsilon(self, commuter_dataset):
        metric = PoiRetrievalPrivacy()
        values = []
        for eps in (1e-4, 1e-2, 1.0):
            protected = GeoIndistinguishability(eps).protect(commuter_dataset, seed=0)
            values.append(metric.evaluate(commuter_dataset, protected))
        assert values[0] <= values[1] <= values[2]
        assert values[0] < values[2]

    def test_per_user_breakdown(self, commuter_dataset):
        per_user = PoiRetrievalPrivacy().evaluate_per_user(
            commuter_dataset, commuter_dataset
        )
        assert per_user
        assert all(v == 1.0 for v in per_user.values())

    def test_users_without_pois_skipped(self, taxi_dataset, commuter_dataset):
        # Random-waypoint-like users have no POIs; the fixture datasets do,
        # so simply verify the skip path via an empty result contract.
        metric = PoiRetrievalPrivacy()
        value = metric.evaluate(taxi_dataset, taxi_dataset)
        assert 0.0 <= value <= 1.0

    def test_invalid_radius_rejected(self):
        with pytest.raises(ValueError):
            PoiRetrievalPrivacy(match_m=0.0)


class TestDistortion:
    def test_identity_is_zero(self, taxi_dataset):
        assert DistortionPrivacy().evaluate(taxi_dataset, taxi_dataset) == 0.0

    def test_matches_noise_scale(self, taxi_dataset):
        eps = 0.01
        protected = GeoIndistinguishability(eps).protect(taxi_dataset, seed=0)
        value = DistortionPrivacy().evaluate(taxi_dataset, protected)
        assert value == pytest.approx(2.0 / eps, rel=0.15)

    def test_higher_noise_more_distortion(self, taxi_dataset):
        low = GaussianPerturbation(10.0).protect(taxi_dataset, seed=0)
        high = GaussianPerturbation(1000.0).protect(taxi_dataset, seed=0)
        metric = DistortionPrivacy()
        assert metric.evaluate(taxi_dataset, low) < metric.evaluate(taxi_dataset, high)


class TestLogDistortion:
    def test_is_log_of_distortion(self, taxi_dataset):
        protected = GeoIndistinguishability(0.01).protect(taxi_dataset, seed=0)
        raw = DistortionPrivacy().evaluate(taxi_dataset, protected)
        # The aggregate is the mean of per-user logs, so compare against
        # the per-user values directly.
        raw_per_user = DistortionPrivacy().evaluate_per_user(
            taxi_dataset, protected
        )
        log_per_user = LogDistortionPrivacy().evaluate_per_user(
            taxi_dataset, protected
        )
        for user, value in raw_per_user.items():
            assert log_per_user[user] == pytest.approx(np.log(value))
        assert raw > 0

    def test_linear_in_log_epsilon(self, taxi_dataset):
        # ln(2/eps): one decade of eps shifts the metric by ln(10).
        metric = LogDistortionPrivacy()
        values = []
        for eps in (1e-3, 1e-2, 1e-1):
            protected = GeoIndistinguishability(eps).protect(taxi_dataset, seed=0)
            values.append(metric.evaluate(taxi_dataset, protected))
        assert values[0] - values[1] == pytest.approx(np.log(10), abs=0.25)
        assert values[1] - values[2] == pytest.approx(np.log(10), abs=0.25)

    def test_registered(self):
        from repro.metrics import metric_class

        assert metric_class("log_distortion") is LogDistortionPrivacy


class TestReidentification:
    def test_identity_fully_linked(self, commuter_dataset):
        metric = ReidentificationPrivacy()
        assert metric.evaluate(commuter_dataset, commuter_dataset) == 1.0

    def test_noise_reduces_linking(self, commuter_dataset):
        protected = GaussianPerturbation(20_000.0).protect(commuter_dataset, seed=0)
        metric = ReidentificationPrivacy()
        assert metric.evaluate(commuter_dataset, protected) < 1.0
