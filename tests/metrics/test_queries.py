"""Tests of the range-query utility."""

import pytest

from repro.lppm import GaussianPerturbation, GeoIndistinguishability
from repro.metrics import RangeQueryUtility


class TestRangeQueryUtility:
    def test_identity_is_one(self, taxi_dataset):
        metric = RangeQueryUtility(n_queries=20)
        assert metric.evaluate(taxi_dataset, taxi_dataset) == pytest.approx(1.0)

    def test_deterministic_given_seed(self, taxi_dataset):
        protected = GaussianPerturbation(300.0).protect(taxi_dataset, seed=0)
        a = RangeQueryUtility(n_queries=20, seed=5).evaluate(taxi_dataset, protected)
        b = RangeQueryUtility(n_queries=20, seed=5).evaluate(taxi_dataset, protected)
        assert a == b

    def test_seed_changes_query_sample(self, taxi_dataset):
        protected = GaussianPerturbation(300.0).protect(taxi_dataset, seed=0)
        a = RangeQueryUtility(n_queries=10, seed=1).evaluate(taxi_dataset, protected)
        b = RangeQueryUtility(n_queries=10, seed=2).evaluate(taxi_dataset, protected)
        # Different query draws, close but not (generically) identical.
        assert a == pytest.approx(b, abs=0.3)

    def test_monotone_in_epsilon(self, taxi_dataset):
        metric = RangeQueryUtility(n_queries=25)
        values = []
        for eps in (1e-3, 1e-2, 1e-1):
            protected = GeoIndistinguishability(eps).protect(taxi_dataset, seed=0)
            values.append(metric.evaluate(taxi_dataset, protected))
        assert values[0] < values[2]
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_larger_radius_more_forgiving(self, taxi_dataset):
        protected = GaussianPerturbation(400.0).protect(taxi_dataset, seed=0)
        small = RangeQueryUtility(radius_m=200.0, n_queries=25).evaluate(
            taxi_dataset, protected
        )
        large = RangeQueryUtility(radius_m=2000.0, n_queries=25).evaluate(
            taxi_dataset, protected
        )
        assert large > small

    def test_validation(self):
        with pytest.raises(ValueError):
            RangeQueryUtility(radius_m=0.0)
        with pytest.raises(ValueError):
            RangeQueryUtility(n_queries=0)
