"""Tests of the time-preservation utility."""

import pytest

from repro.lppm import GeoIndistinguishability, Promesse, TimePerturbation
from repro.metrics import TimePreservationUtility


class TestTimePreservation:
    def test_identity_is_one(self, taxi_dataset):
        metric = TimePreservationUtility()
        assert metric.evaluate(taxi_dataset, taxi_dataset) == pytest.approx(1.0)

    def test_spatial_noise_leaves_time_untouched(self, taxi_dataset):
        protected = GeoIndistinguishability(0.01).protect(taxi_dataset, seed=0)
        metric = TimePreservationUtility()
        assert metric.evaluate(taxi_dataset, protected) == pytest.approx(1.0)

    def test_time_jitter_degrades(self, taxi_dataset):
        metric = TimePreservationUtility(scale_s=600.0)
        small = TimePerturbation(60.0).protect(taxi_dataset, seed=0)
        large = TimePerturbation(3600.0).protect(taxi_dataset, seed=0)
        v_small = metric.evaluate(taxi_dataset, small)
        v_large = metric.evaluate(taxi_dataset, large)
        assert v_large < v_small < 1.0

    def test_promesse_time_warp_detected(self, taxi_dataset):
        # Promesse preserves the span but redistributes timestamps —
        # exactly the distortion this metric exists to expose.
        protected = Promesse(100.0).protect(taxi_dataset, seed=0)
        value = TimePreservationUtility(scale_s=600.0).evaluate(
            taxi_dataset, protected
        )
        assert value < 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            TimePreservationUtility(scale_s=0.0)
