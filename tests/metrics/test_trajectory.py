"""Tests of the DTW / Fréchet trajectory-shape utilities."""

import numpy as np
import pytest

from repro.lppm import GaussianPerturbation, GeoIndistinguishability, Subsampling
from repro.metrics import (
    TrajectoryShapeUtility,
    discrete_frechet_m,
    dtw_distance_m,
)

LINE = np.asarray([[0.0, 0.0], [100.0, 0.0], [200.0, 0.0], [300.0, 0.0]])


class TestDtw:
    def test_identical_is_zero(self):
        assert dtw_distance_m(LINE, LINE) == 0.0

    def test_constant_offset(self):
        shifted = LINE + [0.0, 50.0]
        assert dtw_distance_m(LINE, shifted) == pytest.approx(50.0)

    def test_symmetric(self):
        other = LINE * 1.5 + [10.0, -20.0]
        assert dtw_distance_m(LINE, other) == pytest.approx(
            dtw_distance_m(other, LINE)
        )

    def test_resampling_invariance(self):
        # The same straight segment sampled at different rates must be
        # nearly free under warping.
        # Mean per-step cost of aligning 10 m samples to 100 m anchors
        # is ~spacing/4; warping keeps it well under the spacing itself.
        dense = np.stack([np.linspace(0, 300, 31), np.zeros(31)], axis=1)
        assert dtw_distance_m(LINE, dense) < 30.0

    def test_nonnegative(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(10, 2)) * 100
        b = rng.normal(size=(7, 2)) * 100
        assert dtw_distance_m(a, b) >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            dtw_distance_m(np.zeros((0, 2)), LINE)
        with pytest.raises(ValueError):
            dtw_distance_m(np.zeros(5), LINE)


class TestFrechet:
    def test_identical_is_zero(self):
        assert discrete_frechet_m(LINE, LINE) == 0.0

    def test_constant_offset(self):
        shifted = LINE + [0.0, 50.0]
        assert discrete_frechet_m(LINE, shifted) == pytest.approx(50.0)

    def test_upper_bounds_dtw_mean(self):
        rng = np.random.default_rng(1)
        a = np.cumsum(rng.normal(size=(15, 2)) * 50, axis=0)
        b = a + rng.normal(size=(15, 2)) * 30
        assert discrete_frechet_m(a, b) >= dtw_distance_m(a, b) - 1e-9

    def test_single_far_excursion_dominates(self):
        b = LINE.copy()
        b[2] = [200.0, 500.0]
        assert discrete_frechet_m(LINE, b) >= 400.0


class TestTrajectoryShapeUtility:
    def test_identity_is_one(self, taxi_dataset):
        metric = TrajectoryShapeUtility()
        assert metric.evaluate(taxi_dataset, taxi_dataset) == pytest.approx(1.0)

    def test_monotone_in_noise(self, taxi_dataset):
        metric = TrajectoryShapeUtility(max_points=80)
        low = GaussianPerturbation(20.0).protect(taxi_dataset, seed=0)
        high = GaussianPerturbation(2000.0).protect(taxi_dataset, seed=0)
        assert metric.evaluate(taxi_dataset, low) > metric.evaluate(
            taxi_dataset, high
        )

    def test_monotone_in_epsilon(self, taxi_dataset):
        metric = TrajectoryShapeUtility(max_points=60)
        values = []
        for eps in (1e-3, 1e-2, 1e-1):
            protected = GeoIndistinguishability(eps).protect(taxi_dataset, seed=0)
            values.append(metric.evaluate(taxi_dataset, protected))
        assert values[0] < values[1] < values[2]

    def test_robust_to_subsampling(self, taxi_dataset):
        # Dropping records leaves the path shape mostly intact: the
        # warping metric must rank that far above heavy spatial noise.
        metric = TrajectoryShapeUtility(max_points=80)
        subsampled = Subsampling(0.4).protect(taxi_dataset, seed=0)
        noisy = GaussianPerturbation(2000.0).protect(taxi_dataset, seed=0)
        v_sub = metric.evaluate(taxi_dataset, subsampled)
        v_noise = metric.evaluate(taxi_dataset, noisy)
        assert v_sub > 2 * v_noise
        assert v_sub > 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            TrajectoryShapeUtility(scale_m=0.0)
        with pytest.raises(ValueError):
            TrajectoryShapeUtility(max_points=1)
