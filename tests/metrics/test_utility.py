"""Tests of the utility metrics."""

import pytest

from repro.lppm import GaussianPerturbation, GeoIndistinguishability, Subsampling
from repro.metrics import (
    AreaCoverageUtility,
    SameCellFraction,
    SpatialDistortionUtility,
)


class TestAreaCoverage:
    def test_identity_is_one(self, taxi_dataset):
        assert AreaCoverageUtility().evaluate(taxi_dataset, taxi_dataset) == 1.0

    def test_noise_degrades_coverage(self, taxi_dataset):
        metric = AreaCoverageUtility(cell_size_m=200.0)
        protected = GaussianPerturbation(2000.0).protect(taxi_dataset, seed=0)
        assert metric.evaluate(taxi_dataset, protected) < 0.5

    def test_monotone_in_epsilon(self, taxi_dataset):
        metric = AreaCoverageUtility()
        values = []
        for eps in (1e-4, 1e-2, 1.0):
            protected = GeoIndistinguishability(eps).protect(taxi_dataset, seed=0)
            values.append(metric.evaluate(taxi_dataset, protected))
        assert values[0] < values[1] < values[2]

    def test_larger_cells_more_forgiving(self, taxi_dataset):
        protected = GeoIndistinguishability(0.01).protect(taxi_dataset, seed=0)
        small = AreaCoverageUtility(cell_size_m=100.0).evaluate(
            taxi_dataset, protected
        )
        large = AreaCoverageUtility(cell_size_m=1000.0).evaluate(
            taxi_dataset, protected
        )
        assert large > small

    def test_bounded(self, taxi_dataset):
        protected = GaussianPerturbation(500.0).protect(taxi_dataset, seed=0)
        value = AreaCoverageUtility().evaluate(taxi_dataset, protected)
        assert 0.0 <= value <= 1.0

    def test_invalid_cell_size_rejected(self):
        with pytest.raises(ValueError):
            AreaCoverageUtility(cell_size_m=-1.0)


class TestSameCell:
    def test_identity_is_one(self, taxi_dataset):
        assert SameCellFraction().evaluate(taxi_dataset, taxi_dataset) == 1.0

    def test_noise_degrades(self, taxi_dataset):
        protected = GaussianPerturbation(1000.0).protect(taxi_dataset, seed=0)
        assert SameCellFraction().evaluate(taxi_dataset, protected) < 0.5

    def test_subsampled_traces_still_evaluable(self, taxi_dataset):
        protected = Subsampling(0.3).protect(taxi_dataset, seed=0)
        value = SameCellFraction().evaluate(taxi_dataset, protected)
        # Kept records are unmoved, and pairing is by nearest time, so
        # most pairs land in the same cell.
        assert value > 0.5


class TestSpatialDistortion:
    def test_identity_is_one(self, taxi_dataset):
        assert SpatialDistortionUtility().evaluate(
            taxi_dataset, taxi_dataset
        ) == pytest.approx(1.0)

    def test_error_at_scale_is_inv_e(self, taxi_dataset):
        scale = 100.0 * 2.0 / (2.0 / 0.02)  # keep explicit arithmetic honest
        del scale
        # Gaussian sigma chosen so mean displacement ~ scale.
        sigma = 200.0 / (3.14159 / 2.0) ** 0.5
        protected = GaussianPerturbation(sigma).protect(taxi_dataset, seed=0)
        value = SpatialDistortionUtility(scale_m=200.0).evaluate(
            taxi_dataset, protected
        )
        assert value == pytest.approx(0.37, abs=0.08)

    def test_monotone_in_epsilon(self, taxi_dataset):
        metric = SpatialDistortionUtility()
        values = []
        for eps in (1e-3, 1e-2, 1e-1):
            protected = GeoIndistinguishability(eps).protect(taxi_dataset, seed=0)
            values.append(metric.evaluate(taxi_dataset, protected))
        assert values[0] < values[1] < values[2]

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            SpatialDistortionUtility(scale_m=0.0)
