"""Tests of the Dataset container."""

import pytest

from repro.mobility import Dataset, Trace


def _trace(user: str, lat0: float = 37.0) -> Trace:
    return Trace(user, [0.0, 60.0], [lat0, lat0 + 0.001], [-122.0, -122.001])


@pytest.fixture
def dataset() -> Dataset:
    return Dataset.from_traces([_trace("a"), _trace("b", 38.0), _trace("c", 39.0)])


class TestConstruction:
    def test_duplicate_users_rejected(self):
        with pytest.raises(ValueError):
            Dataset.from_traces([_trace("a"), _trace("a")])

    def test_mismatched_key_rejected(self):
        with pytest.raises(ValueError):
            Dataset({"not-a": _trace("a")})

    def test_empty_dataset_allowed(self):
        ds = Dataset({})
        assert len(ds) == 0


class TestMapping:
    def test_getitem(self, dataset):
        assert dataset["a"].user == "a"

    def test_missing_key(self, dataset):
        with pytest.raises(KeyError):
            dataset["zz"]

    def test_users_sorted(self, dataset):
        assert dataset.users == ["a", "b", "c"]

    def test_len_and_iteration(self, dataset):
        assert len(dataset) == 3
        assert list(dataset) == ["a", "b", "c"]

    def test_n_records(self, dataset):
        assert dataset.n_records == 6

    def test_repr(self, dataset):
        assert "3" in repr(dataset)


class TestAggregates:
    def test_bbox_covers_all(self, dataset):
        box = dataset.bbox()
        for trace in dataset.traces:
            sub = trace.bbox()
            assert box.union(sub) == box

    def test_bbox_empty_rejected(self):
        with pytest.raises(ValueError):
            Dataset({}).bbox()

    def test_centroid_between_extremes(self, dataset):
        c = dataset.centroid()
        assert 37.0 <= c.lat <= 39.01


class TestFunctional:
    def test_map_traces(self, dataset):
        shifted = dataset.map_traces(
            lambda t: t.with_coords(t.lats + 0.1, t.lons)
        )
        assert shifted["a"].lats[0] == pytest.approx(37.1)
        # Original untouched.
        assert dataset["a"].lats[0] == pytest.approx(37.0)

    def test_map_traces_must_keep_user(self, dataset):
        with pytest.raises(ValueError):
            dataset.map_traces(lambda t: t.renamed("same-for-all"))

    def test_subset(self, dataset):
        sub = dataset.subset(["b", "a"])
        assert sub.users == ["a", "b"]

    def test_subset_unknown_user(self, dataset):
        with pytest.raises(KeyError):
            dataset.subset(["a", "zz"])

    def test_filter_users(self, dataset):
        kept = dataset.filter_users(lambda t: t.lats[0] > 37.5)
        assert kept.users == ["b", "c"]

    def test_merged_with(self, dataset):
        extra = Dataset.from_traces([_trace("z", 40.0)])
        merged = dataset.merged_with(extra)
        assert merged.users == ["a", "b", "c", "z"]

    def test_merged_with_overlap_rejected(self, dataset):
        with pytest.raises(ValueError):
            dataset.merged_with(Dataset.from_traces([_trace("a")]))
