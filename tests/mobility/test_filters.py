"""Tests of the trace-cleaning filters."""

import numpy as np
import pytest

from repro.geo import BoundingBox
from repro.mobility import (
    Dataset,
    Trace,
    clean_dataset,
    clip_to_bbox,
    dedupe_timestamps,
    remove_speed_spikes,
    resample_min_interval,
    split_by_gap,
)


class TestDedupe:
    def test_keeps_first_of_duplicates(self):
        t = Trace("u", [0.0, 0.0, 1.0], [10.0, 20.0, 30.0], [0.0, 0.0, 0.0])
        out = dedupe_timestamps(t)
        assert out.times_s.tolist() == [0.0, 1.0]
        assert out.lats.tolist() == [10.0, 30.0]

    def test_no_duplicates_untouched(self, simple_trace):
        assert dedupe_timestamps(simple_trace) == simple_trace

    def test_single_record(self):
        t = Trace("u", [0.0], [0.0], [0.0])
        assert dedupe_timestamps(t) == t


class TestResample:
    def test_enforces_interval(self):
        t = Trace("u", np.arange(10.0), np.zeros(10), np.zeros(10))
        out = resample_min_interval(t, 3.0)
        assert np.all(np.diff(out.times_s) >= 3.0)
        assert out.times_s[0] == 0.0

    def test_interval_larger_than_span_keeps_first(self):
        t = Trace("u", [0.0, 1.0, 2.0], [0.0, 0.0, 0.0], [0.0, 0.0, 0.0])
        out = resample_min_interval(t, 100.0)
        assert len(out) == 1

    def test_invalid_interval_rejected(self, simple_trace):
        with pytest.raises(ValueError):
            resample_min_interval(simple_trace, 0.0)


class TestSplitByGap:
    def test_splits_at_gaps(self):
        t = Trace(
            "u",
            [0.0, 60.0, 3700.0, 3760.0, 9000.0],
            [0.0] * 5,
            [0.0] * 5,
        )
        parts = split_by_gap(t, 3600.0)
        assert [len(p) for p in parts] == [2, 2, 1]
        assert all(p.user == "u" for p in parts)

    def test_no_gap_single_segment(self, simple_trace):
        parts = split_by_gap(simple_trace, 3600.0)
        assert len(parts) == 1
        assert parts[0] == simple_trace

    def test_empty_trace(self):
        assert split_by_gap(Trace("u", [], [], []), 10.0) == []

    def test_invalid_gap_rejected(self, simple_trace):
        with pytest.raises(ValueError):
            split_by_gap(simple_trace, -1.0)


class TestClip:
    def test_drops_outside_points(self):
        t = Trace("u", [0.0, 1.0, 2.0], [37.5, 45.0, 37.6], [-122.5, 0.0, -122.4])
        box = BoundingBox(37.0, -123.0, 38.0, -122.0)
        out = clip_to_bbox(t, box)
        assert len(out) == 2
        assert np.all(box.contains_arrays(out.lats, out.lons))


class TestSpeedSpikes:
    def test_removes_teleport(self):
        # Third point is ~100 km away one second later: impossible.
        t = Trace(
            "u",
            [0.0, 1.0, 2.0, 3.0],
            [37.0, 37.0001, 38.0, 37.0002],
            [-122.0, -122.0, -122.0, -122.0],
        )
        out = remove_speed_spikes(t, max_speed_mps=70.0)
        assert 38.0 not in out.lats.tolist()
        assert len(out) == 3

    def test_plausible_trace_untouched(self, simple_trace):
        assert remove_speed_spikes(simple_trace) == simple_trace

    def test_invalid_speed_rejected(self, simple_trace):
        with pytest.raises(ValueError):
            remove_speed_spikes(simple_trace, 0.0)


class TestCleanDataset:
    def test_pipeline_drops_tiny_traces(self):
        good = Trace(
            "good", [0.0, 30.0, 60.0], [37.0, 37.0001, 37.0002], [-122.0] * 3
        )
        tiny = Trace("tiny", [0.0], [37.0], [-122.0])
        ds = Dataset.from_traces([good, tiny])
        out = clean_dataset(ds, min_records=2)
        assert out.users == ["good"]

    def test_pipeline_dedupes_and_despikes(self):
        t = Trace(
            "u",
            [0.0, 0.0, 30.0, 31.0],
            [37.0, 37.5, 37.0001, 39.0],
            [-122.0] * 4,
        )
        out = clean_dataset(Dataset.from_traces([t]), min_interval_s=1.0)
        trace = out["u"]
        assert len(trace) == 2
        assert 39.0 not in trace.lats.tolist()
