"""Round-trip tests of the three on-disk formats."""

import numpy as np
import pytest

from repro.mobility import (
    Dataset,
    Trace,
    read_cabspotting,
    read_csv,
    read_geolife,
    write_cabspotting,
    write_csv,
    write_geolife,
)


@pytest.fixture
def dataset() -> Dataset:
    base = 1_300_000_000.0  # plausible unix time
    return Dataset.from_traces([
        Trace(
            "u1",
            [base, base + 60.0, base + 120.0],
            [37.7749, 37.7759, 37.7769],
            [-122.4194, -122.4184, -122.4174],
        ),
        Trace(
            "u2",
            [base + 5.0, base + 65.0],
            [37.70, 37.71],
            [-122.40, -122.41],
        ),
    ])


class TestCsv:
    def test_round_trip_exact(self, dataset, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(dataset, path)
        back = read_csv(path)
        assert back.users == dataset.users
        for user in dataset.users:
            assert back[user] == dataset[user]

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y,z\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_bad_column_count_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("user,time_s,lat,lon\nu1,0.0,37.0\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_creates_parent_directories(self, dataset, tmp_path):
        path = tmp_path / "deep" / "nested" / "data.csv"
        write_csv(dataset, path)
        assert path.exists()


class TestGeolife:
    def test_round_trip(self, dataset, tmp_path):
        root = tmp_path / "geolife"
        write_geolife(dataset, root)
        back = read_geolife(root)
        assert back.users == dataset.users
        for user in dataset.users:
            assert np.allclose(back[user].lats, dataset[user].lats, atol=1e-6)
            assert np.allclose(back[user].lons, dataset[user].lons, atol=1e-6)
            assert np.allclose(back[user].times_s, dataset[user].times_s, atol=1.0)

    def test_layout_on_disk(self, dataset, tmp_path):
        root = tmp_path / "geolife"
        write_geolife(dataset, root)
        plt_files = list((root / "u1" / "Trajectory").glob("*.plt"))
        assert len(plt_files) == 1
        lines = plt_files[0].read_text().splitlines()
        assert lines[0] == "Geolife trajectory"
        assert len(lines) == 6 + 3  # header + three records

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_geolife(tmp_path / "nope")

    def test_short_plt_line_rejected(self, tmp_path):
        plt_dir = tmp_path / "u" / "Trajectory"
        plt_dir.mkdir(parents=True)
        (plt_dir / "t.plt").write_text("\n" * 6 + "37.0,-122.0,0\n")
        with pytest.raises(ValueError):
            read_geolife(tmp_path)


class TestCabspotting:
    def test_round_trip(self, dataset, tmp_path):
        root = tmp_path / "cabs"
        write_cabspotting(dataset, root)
        back = read_cabspotting(root)
        assert back.users == dataset.users
        for user in dataset.users:
            assert np.allclose(back[user].lats, dataset[user].lats, atol=1e-6)
            assert np.allclose(back[user].lons, dataset[user].lons, atol=1e-6)
            # Cabspotting stores integer timestamps.
            assert np.allclose(back[user].times_s, dataset[user].times_s, atol=1.0)

    def test_newest_first_on_disk(self, dataset, tmp_path):
        root = tmp_path / "cabs"
        write_cabspotting(dataset, root)
        lines = (root / "new_u1.txt").read_text().splitlines()
        times = [int(line.split()[3]) for line in lines]
        assert times == sorted(times, reverse=True)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_cabspotting(tmp_path / "nope")

    def test_malformed_line_rejected(self, tmp_path):
        root = tmp_path / "cabs"
        root.mkdir()
        (root / "new_x.txt").write_text("37.0 -122.0 0\n")
        with pytest.raises(ValueError):
            read_cabspotting(root)
