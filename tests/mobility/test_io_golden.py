"""Golden-file tests: parse *literal* snippets of the real formats.

Round-trip tests prove write/read consistency but would hide a shared
misunderstanding of the format.  These fixtures are verbatim lines in
the published Cabspotting and GeoLife layouts (values taken from the
datasets' documentation), so the parsers are checked against the real
thing.
"""

import datetime as dt

import pytest

from repro.mobility import read_cabspotting, read_geolife

# One cab, three fixes, newest first: "lat lon occupancy unix_time".
CABSPOTTING_SNIPPET = """\
37.75134 -122.39488 0 1213084687
37.75136 -122.39527 0 1213084659
37.75199 -122.39346 1 1213084540
"""

# Verbatim GeoLife PLT: six header lines then
# "lat,lon,0,alt_ft,days_since_1899-12-30,date,time".
GEOLIFE_SNIPPET = """\
Geolife trajectory
WGS 84
Altitude is in Feet
Reserved 3
0,2,255,My Track,0,0,2,8421376
0
39.984702,116.318417,0,492,39744.1201851852,2008-10-23,02:53:04
39.984683,116.31845,0,492,39744.1202546296,2008-10-23,02:53:10
39.984686,116.318417,0,492,39744.1203125,2008-10-23,02:53:15
"""


class TestCabspottingGolden:
    @pytest.fixture
    def dataset(self, tmp_path):
        (tmp_path / "new_abboip.txt").write_text(CABSPOTTING_SNIPPET)
        return read_cabspotting(tmp_path)

    def test_cab_id_from_filename(self, dataset):
        assert dataset.users == ["abboip"]

    def test_records_sorted_oldest_first(self, dataset):
        trace = dataset["abboip"]
        assert trace.times_s.tolist() == [1213084540.0, 1213084659.0, 1213084687.0]

    def test_coordinates(self, dataset):
        trace = dataset["abboip"]
        # Oldest record is the occupied one at 37.75199, -122.39346.
        assert trace.lats[0] == pytest.approx(37.75199)
        assert trace.lons[0] == pytest.approx(-122.39346)
        assert trace.lats[-1] == pytest.approx(37.75134)


class TestGeolifeGolden:
    @pytest.fixture
    def dataset(self, tmp_path):
        plt_dir = tmp_path / "000" / "Trajectory"
        plt_dir.mkdir(parents=True)
        (plt_dir / "20081023025304.plt").write_text(GEOLIFE_SNIPPET)
        return read_geolife(tmp_path)

    def test_user_from_directory(self, dataset):
        assert dataset.users == ["000"]

    def test_coordinates(self, dataset):
        trace = dataset["000"]
        assert len(trace) == 3
        assert trace.lats[0] == pytest.approx(39.984702)
        assert trace.lons[0] == pytest.approx(116.318417)

    def test_excel_day_number_decoded_to_utc(self, dataset):
        # 39744.1201851852 days after 1899-12-30 is 2008-10-23 02:53:04 UTC
        # (the date/time columns of the same line).
        trace = dataset["000"]
        moment = dt.datetime.fromtimestamp(trace.times_s[0], tz=dt.timezone.utc)
        assert moment.year == 2008
        assert moment.month == 10
        assert moment.day == 23
        assert moment.hour == 2
        assert moment.minute == 53
        assert abs(moment.second - 4) <= 1  # day-fraction rounding

    def test_intervals_match_time_column(self, dataset):
        trace = dataset["000"]
        assert trace.times_s[1] - trace.times_s[0] == pytest.approx(6.0, abs=0.5)
        assert trace.times_s[2] - trace.times_s[1] == pytest.approx(5.0, abs=0.5)
