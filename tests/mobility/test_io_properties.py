"""Round-trip and validation properties of the streaming trace IO.

These pin the ingestion-layer contract: unsorted and newest-first
inputs come out time-sorted, sub-second timestamps survive write/read
round trips (the bug ``int(rec.time_s)`` used to cause), duplicate
timestamps collapse to the first record in sorted order, blank and
whitespace-only lines are not records, malformed coordinates are
rejected with errors naming file and line, and the parsers never slurp
whole files into memory.
"""

import numpy as np
import pytest

from repro.mobility import (
    Dataset,
    Trace,
    read_cabspotting,
    read_csv,
    read_geolife,
    write_cabspotting,
    write_csv,
    write_geolife,
)

BASE = 1_300_000_000.0


def _random_dataset(rng, n_users=3, n_records=40) -> Dataset:
    """Sub-second, strictly-increasing timestamps; jittered coords."""
    traces = []
    for u in range(n_users):
        times = BASE + np.cumsum(rng.uniform(0.25, 90.0, n_records))
        times = np.round(times, 3)
        lats = 37.7 + rng.normal(0, 0.01, n_records)
        lons = -122.4 + rng.normal(0, 0.01, n_records)
        traces.append(Trace(f"u{u}", times, lats, lons))
    return Dataset.from_traces(traces)


class TestSubSecondRoundTrip:
    @pytest.fixture
    def dataset(self):
        return _random_dataset(np.random.default_rng(7))

    def test_cabspotting_times_exact(self, dataset, tmp_path):
        write_cabspotting(dataset, tmp_path)
        back = read_cabspotting(tmp_path)
        for user in dataset.users:
            assert np.array_equal(back[user].times_s, dataset[user].times_s)

    def test_cabspotting_integral_times_stay_integers(self, tmp_path):
        trace = Trace("c", [BASE, BASE + 60.0], [37.0, 37.1], [-122.0, -122.1])
        write_cabspotting(Dataset.from_traces([trace]), tmp_path)
        lines = (tmp_path / "new_c.txt").read_text().splitlines()
        # The published layout uses bare integers; integral timestamps
        # must not sprout ".0" suffixes.
        assert lines[0].split()[3] == str(int(BASE) + 60)
        assert "." not in lines[0].split()[3]

    def test_cabspotting_newest_first_layout_kept(self, dataset, tmp_path):
        write_cabspotting(dataset, tmp_path)
        for user in dataset.users:
            lines = (tmp_path / f"new_{user}.txt").read_text().splitlines()
            times = [float(line.split()[3]) for line in lines]
            assert times == sorted(times, reverse=True)

    def test_csv_round_trip_exact(self, dataset, tmp_path):
        path = tmp_path / "d.csv"
        write_csv(dataset, path)
        back = read_csv(path)
        for user in dataset.users:
            assert back[user] == dataset[user]

    def test_geolife_times_within_day_fraction_resolution(
        self, dataset, tmp_path
    ):
        write_geolife(dataset, tmp_path)
        back = read_geolife(tmp_path)
        for user in dataset.users:
            # The PLT day-number column carries ~ms resolution at
            # modern epochs; coordinates are written at 1e-6 degrees.
            assert np.allclose(
                back[user].times_s, dataset[user].times_s, atol=0.01
            )
            assert np.allclose(back[user].lats, dataset[user].lats, atol=1e-6)


class TestUnsortedInput:
    def test_cabspotting_oldest_first_file_reads_sorted(self, tmp_path):
        # Violates the newest-first convention; order must not matter.
        (tmp_path / "new_x.txt").write_text(
            f"37.0 -122.0 0 {BASE}\n"
            f"37.2 -122.2 0 {BASE + 120.5}\n"
            f"37.1 -122.1 0 {BASE + 60.25}\n"
        )
        trace = read_cabspotting(tmp_path)["x"]
        assert list(trace.times_s) == [BASE, BASE + 60.25, BASE + 120.5]
        assert list(trace.lats) == [37.0, 37.1, 37.2]

    def test_csv_shuffled_rows_read_sorted(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text(
            "user,time_s,lat,lon\n"
            f"u,{BASE + 9.5},37.2,-122.2\n"
            f"u,{BASE},37.0,-122.0\n"
            f"u,{BASE + 4.25},37.1,-122.1\n"
        )
        trace = read_csv(path)["u"]
        assert list(trace.times_s) == [BASE, BASE + 4.25, BASE + 9.5]
        assert list(trace.lats) == [37.0, 37.1, 37.2]

    def test_geolife_files_concatenate_sorted(self, tmp_path):
        plt_dir = tmp_path / "u" / "Trajectory"
        plt_dir.mkdir(parents=True)
        header = "h\n" * 6
        # Later file holds earlier times; concatenation must re-sort.
        (plt_dir / "a.plt").write_text(
            header + "37.1,-122.1,0,0,40000.5,2009-07-06,12:00:00\n"
        )
        (plt_dir / "b.plt").write_text(
            header + "37.0,-122.0,0,0,40000.25,2009-07-06,06:00:00\n"
        )
        trace = read_geolife(tmp_path)["u"]
        assert list(trace.lats) == [37.0, 37.1]
        assert trace.times_s[0] < trace.times_s[1]


class TestDuplicateTimestamps:
    def test_cabspotting_duplicates_collapse_keep_first_sorted(
        self, tmp_path
    ):
        # The file is newest-first, so among records sharing a
        # timestamp the *later line* is the chronologically first
        # record — that one survives, same rule as
        # filters.dedupe_timestamps on the in-memory trace.
        (tmp_path / "new_x.txt").write_text(
            f"37.9 -122.9 0 {BASE + 60}\n"
            f"37.6 -122.6 0 {BASE}\n"
            f"37.5 -122.5 0 {BASE}\n"
        )
        trace = read_cabspotting(tmp_path)["x"]
        assert len(trace) == 2
        assert list(trace.times_s) == [BASE, BASE + 60]
        assert trace.lats[0] == 37.5

    def test_duplicate_collapse_is_format_independent(self, tmp_path):
        # One dataset with a duplicated timestamp, saved in two
        # formats, must reload with the *same* surviving record.
        trace = Trace("u", [BASE, BASE, BASE + 60],
                      [37.1, 37.2, 37.3], [-122.1, -122.2, -122.3])
        dataset = Dataset.from_traces([trace])
        write_csv(dataset, tmp_path / "d.csv")
        write_cabspotting(dataset, tmp_path / "cabs")
        via_csv = read_csv(tmp_path / "d.csv")["u"]
        via_cabs = read_cabspotting(tmp_path / "cabs")["u"]
        assert list(via_csv.lats) == list(via_cabs.lats) == [37.1, 37.3]

    def test_csv_duplicates_collapse_keep_first_in_file(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text(
            "user,time_s,lat,lon\n"
            f"u,{BASE},37.5,-122.5\n"
            f"u,{BASE},37.6,-122.6\n"
            f"u,{BASE + 1},37.7,-122.7\n"
        )
        trace = read_csv(path)["u"]
        assert len(trace) == 2
        assert trace.lats[0] == 37.5


class TestBlankLines:
    def test_cabspotting_blank_and_whitespace_lines_skipped(self, tmp_path):
        (tmp_path / "new_x.txt").write_text(
            f"37.0 -122.0 0 {BASE}\n\n   \n37.1 -122.1 0 {BASE + 60}\n"
        )
        assert len(read_cabspotting(tmp_path)["x"]) == 2

    def test_csv_blank_and_whitespace_lines_skipped(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text(
            f"user,time_s,lat,lon\nu,{BASE},37.0,-122.0\n\n   \n"
            f"u,{BASE + 1},37.1,-122.1\n"
        )
        assert len(read_csv(path)["u"]) == 2

    def test_geolife_blank_lines_skipped(self, tmp_path):
        plt_dir = tmp_path / "u" / "Trajectory"
        plt_dir.mkdir(parents=True)
        (plt_dir / "a.plt").write_text(
            "h\n" * 6
            + "37.0,-122.0,0,0,40000.5,2009-07-06,12:00:00\n\n   \n"
        )
        assert len(read_geolife(tmp_path)["u"]) == 1


class TestMalformedCoordinates:
    """NaN and out-of-range values are rejected, named by file:line."""

    @pytest.mark.parametrize("lat,lon", [
        ("nan", "-122.0"),
        ("37.0", "nan"),
        ("inf", "-122.0"),
        ("91.0", "-122.0"),
        ("-90.5", "-122.0"),
        ("37.0", "180.5"),
        ("37.0", "-181.0"),
    ])
    def test_cabspotting_rejects(self, tmp_path, lat, lon):
        cab = tmp_path / "new_x.txt"
        cab.write_text(f"37.0 -122.0 0 {BASE}\n{lat} {lon} 0 {BASE + 1}\n")
        with pytest.raises(ValueError, match=rf"{cab.name}:2"):
            read_cabspotting(tmp_path)

    @pytest.mark.parametrize("lat,lon", [
        ("nan", "-122.0"), ("95.0", "-122.0"), ("37.0", "200.0"),
    ])
    def test_csv_rejects(self, tmp_path, lat, lon):
        path = tmp_path / "d.csv"
        path.write_text(f"user,time_s,lat,lon\nu,{BASE},{lat},{lon}\n")
        with pytest.raises(ValueError, match=r"d\.csv:2"):
            read_csv(path)

    def test_geolife_rejects_with_file_and_line(self, tmp_path):
        plt_dir = tmp_path / "u" / "Trajectory"
        plt_dir.mkdir(parents=True)
        plt = plt_dir / "a.plt"
        plt.write_text(
            "h\n" * 6 + "99.0,-122.0,0,0,40000.5,2009-07-06,12:00:00\n"
        )
        with pytest.raises(ValueError, match=r"a\.plt:7"):
            read_geolife(tmp_path)

    def test_unparseable_number_named_by_line(self, tmp_path):
        (tmp_path / "new_x.txt").write_text("37.0 -122.0 0 not-a-time\n")
        with pytest.raises(ValueError, match=r"new_x\.txt:1.*not-a-time"):
            read_cabspotting(tmp_path)

    def test_non_finite_time_rejected(self, tmp_path):
        (tmp_path / "new_x.txt").write_text("37.0 -122.0 0 inf\n")
        with pytest.raises(ValueError, match=r"new_x\.txt:1"):
            read_cabspotting(tmp_path)


class _NoSlurpHandle:
    """A file object that supports iteration but forbids bulk reads."""

    def __init__(self, fh):
        self._fh = fh

    def __iter__(self):
        return iter(self._fh)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return self._fh.__exit__(*exc_info)

    def read(self, *args, **kwargs):
        raise AssertionError("parser read the whole file into memory")

    def __getattr__(self, name):
        return getattr(self._fh, name)


class TestStreaming:
    """The readers iterate; they never call ``fh.read()``."""

    @pytest.fixture
    def no_slurp_open(self, monkeypatch):
        from pathlib import Path

        real_open = Path.open

        def spy_open(self, *args, **kwargs):
            return _NoSlurpHandle(real_open(self, *args, **kwargs))

        return lambda: monkeypatch.setattr(Path, "open", spy_open)

    def test_geolife_streams(self, tmp_path, no_slurp_open):
        dataset = _random_dataset(np.random.default_rng(1), n_users=2)
        write_geolife(dataset, tmp_path)
        no_slurp_open()
        assert read_geolife(tmp_path).n_records == dataset.n_records

    def test_cabspotting_streams(self, tmp_path, no_slurp_open):
        dataset = _random_dataset(np.random.default_rng(2), n_users=2)
        write_cabspotting(dataset, tmp_path)
        no_slurp_open()
        assert read_cabspotting(tmp_path).n_records == dataset.n_records

    def test_csv_streams(self, tmp_path, no_slurp_open):
        dataset = _random_dataset(np.random.default_rng(3), n_users=2)
        path = tmp_path / "d.csv"
        write_csv(dataset, path)
        no_slurp_open()
        assert read_csv(path).n_records == dataset.n_records
