"""Tests of dataset splitting utilities."""

import pytest

from repro.mobility import Dataset, Trace, split_by_time_fraction, split_users


class TestSplitByTime:
    def test_head_tail_partition(self, taxi_dataset):
        head, tail = split_by_time_fraction(taxi_dataset, 0.5)
        assert head.users == tail.users
        for user in head.users:
            original = taxi_dataset[user]
            assert len(head[user]) + len(tail[user]) == len(original)
            assert head[user].times_s[-1] < tail[user].times_s[0]

    def test_fraction_shifts_the_cut(self, taxi_dataset):
        head_small, _ = split_by_time_fraction(taxi_dataset, 0.2)
        head_large, _ = split_by_time_fraction(taxi_dataset, 0.8)
        for user in head_small.users:
            assert len(head_small[user]) < len(head_large[user])

    def test_degenerate_traces_dropped(self):
        ds = Dataset.from_traces([
            Trace("single", [0.0], [37.0], [-122.0]),
            Trace("pair", [0.0, 100.0], [37.0, 37.1], [-122.0, -122.0]),
        ])
        head, tail = split_by_time_fraction(ds, 0.5)
        assert head.users == ["pair"]
        assert tail.users == ["pair"]

    def test_validation(self, taxi_dataset):
        with pytest.raises(ValueError):
            split_by_time_fraction(taxi_dataset, 0.0)
        with pytest.raises(ValueError):
            split_by_time_fraction(taxi_dataset, 1.0)


class TestSplitUsers:
    def test_disjoint_partition(self, taxi_dataset):
        a, b = split_users(taxi_dataset, 0.5, seed=1)
        assert set(a.users) | set(b.users) == set(taxi_dataset.users)
        assert not set(a.users) & set(b.users)

    def test_fraction_respected(self, taxi_dataset):
        a, b = split_users(taxi_dataset, 1.0 / 3.0, seed=1)
        assert len(a) == round(len(taxi_dataset) / 3)

    def test_deterministic_by_seed(self, taxi_dataset):
        a1, _ = split_users(taxi_dataset, 0.5, seed=9)
        a2, _ = split_users(taxi_dataset, 0.5, seed=9)
        assert a1.users == a2.users

    def test_both_sides_nonempty_even_for_extreme_fractions(self, taxi_dataset):
        a, b = split_users(taxi_dataset, 0.01, seed=0)
        assert len(a) >= 1
        assert len(b) >= 1

    def test_too_few_users_rejected(self):
        ds = Dataset.from_traces([Trace("only", [0.0], [37.0], [-122.0])])
        with pytest.raises(ValueError):
            split_users(ds, 0.5)
