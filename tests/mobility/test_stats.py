"""Tests of trace and dataset statistics."""

import numpy as np
import pytest

from repro.mobility import (
    Dataset,
    Trace,
    dataset_stats,
    radius_of_gyration_m,
    trace_stats,
)


class TestRadiusOfGyration:
    def test_stationary_trace_is_zero(self):
        t = Trace("u", [0.0, 1.0, 2.0], [37.0] * 3, [-122.0] * 3)
        assert radius_of_gyration_m(t) == pytest.approx(0.0, abs=1e-6)

    def test_empty_trace_is_zero(self):
        assert radius_of_gyration_m(Trace("u", [], [], [])) == 0.0

    def test_symmetric_pair(self):
        # Two points ~2.2 km apart: rog is half the separation.
        t = Trace("u", [0.0, 1.0], [37.00, 37.02], [-122.0, -122.0])
        separation = t.length_m
        assert radius_of_gyration_m(t) == pytest.approx(separation / 2, rel=1e-3)

    def test_scales_with_spread(self):
        tight = Trace("u", [0, 1], [37.000, 37.001], [-122.0, -122.0])
        wide = Trace("u", [0, 1], [37.00, 37.01], [-122.0, -122.0])
        assert radius_of_gyration_m(wide) > radius_of_gyration_m(tight)


class TestTraceStats:
    def test_values_on_crafted_trace(self):
        t = Trace(
            "u",
            [0.0, 100.0, 200.0],
            [37.0, 37.009, 37.018],  # ~1 km hops
            [-122.0] * 3,
        )
        s = trace_stats(t)
        assert s.user == "u"
        assert s.n_records == 3
        assert s.duration_s == 200.0
        assert s.length_m == pytest.approx(2000.0, rel=0.01)
        assert s.mean_speed_mps == pytest.approx(10.0, rel=0.01)
        assert s.median_interval_s == 100.0
        assert s.radius_of_gyration_m > 0

    def test_single_record_trace(self):
        s = trace_stats(Trace("u", [5.0], [37.0], [-122.0]))
        assert s.duration_s == 0.0
        assert s.mean_speed_mps == 0.0
        assert s.median_interval_s == 0.0


class TestDatasetStats:
    def test_keys_and_sanity(self, taxi_dataset):
        stats = dataset_stats(taxi_dataset)
        assert stats["n_users"] == len(taxi_dataset)
        assert stats["n_records"] == taxi_dataset.n_records
        assert stats["mean_records_per_user"] > 0
        assert stats["covered_cells"] >= 1
        assert np.isfinite(list(stats.values())).all()

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            dataset_stats(Dataset({}))
