"""Tests of the Trace data type."""

import numpy as np
import pytest

from repro.mobility import Trace, TraceRecord


class TestConstruction:
    def test_basic(self, simple_trace):
        assert len(simple_trace) == 4
        assert simple_trace.user == "alice"

    def test_empty_user_rejected(self):
        with pytest.raises(ValueError):
            Trace("", [0.0], [0.0], [0.0])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            Trace("u", [0.0, 1.0], [0.0], [0.0, 0.0])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError):
            Trace("u", [[0.0]], [[0.0]], [[0.0]])

    def test_invalid_coordinates_rejected(self):
        with pytest.raises(ValueError):
            Trace("u", [0.0], [91.0], [0.0])
        with pytest.raises(ValueError):
            Trace("u", [0.0], [0.0], [181.0])

    def test_unsorted_input_sorted(self):
        t = Trace("u", [3.0, 1.0, 2.0], [30.0, 10.0, 20.0], [3.0, 1.0, 2.0])
        assert t.times_s.tolist() == [1.0, 2.0, 3.0]
        assert t.lats.tolist() == [10.0, 20.0, 30.0]

    def test_sort_is_stable_for_ties(self):
        t = Trace("u", [1.0, 1.0, 0.0], [10.0, 20.0, 0.0], [0.0, 0.0, 0.0])
        assert t.lats.tolist() == [0.0, 10.0, 20.0]

    def test_arrays_frozen(self, simple_trace):
        with pytest.raises(ValueError):
            simple_trace.lats[0] = 0.0

    def test_empty_trace_allowed(self):
        t = Trace("u", [], [], [])
        assert t.is_empty
        assert t.duration_s == 0.0
        assert t.length_m == 0.0


class TestContainer:
    def test_iter_yields_records(self, simple_trace):
        records = list(simple_trace)
        assert all(isinstance(r, TraceRecord) for r in records)
        assert records[0].user == "alice"
        assert records[0].time_s == 0.0
        assert records[-1].time_s == 180.0

    def test_getitem_scalar(self, simple_trace):
        r = simple_trace[1]
        assert r.time_s == 60.0
        assert r.point.lat == pytest.approx(37.7750)

    def test_getitem_slice_returns_trace(self, simple_trace):
        sub = simple_trace[1:3]
        assert isinstance(sub, Trace)
        assert len(sub) == 2
        assert sub.user == "alice"

    def test_equality(self, simple_trace):
        clone = Trace(
            "alice",
            simple_trace.times_s.copy(),
            simple_trace.lats.copy(),
            simple_trace.lons.copy(),
        )
        assert clone == simple_trace
        assert clone != simple_trace.renamed("bob")

    def test_repr_mentions_user_and_size(self, simple_trace):
        assert "alice" in repr(simple_trace)
        assert "4" in repr(simple_trace)


class TestDerived:
    def test_duration(self, simple_trace):
        assert simple_trace.duration_s == 180.0

    def test_length_positive_monotone_path(self, simple_trace):
        assert simple_trace.length_m > 0

    def test_length_sums_segments(self):
        # Straight line north: length should be ~distance first-to-last.
        t = Trace("u", [0, 1, 2], [0.0, 0.005, 0.01], [0.0, 0.0, 0.0])
        direct = Trace("u", [0, 1], [0.0, 0.01], [0.0, 0.0])
        assert t.length_m == pytest.approx(direct.length_m, rel=1e-9)

    def test_bbox_and_centroid(self, simple_trace):
        box = simple_trace.bbox()
        assert box.contains(simple_trace.centroid())

    def test_empty_trace_bbox_rejected(self):
        with pytest.raises(ValueError):
            Trace("u", [], [], []).bbox()


class TestFunctionalUpdates:
    def test_with_coords_replaces_only_coords(self, simple_trace):
        new = simple_trace.with_coords(
            simple_trace.lats + 0.001, simple_trace.lons - 0.001
        )
        assert np.array_equal(new.times_s, simple_trace.times_s)
        assert new.user == simple_trace.user
        assert not np.array_equal(new.lats, simple_trace.lats)

    def test_with_times_resorts(self, simple_trace):
        new = simple_trace.with_times(simple_trace.times_s[::-1].copy())
        assert np.all(np.diff(new.times_s) >= 0)

    def test_updates_share_frozen_arrays_without_copying(self, simple_trace):
        # The functional updates hand the untouched arrays straight to
        # the new trace (no defensive copy) — safe because every trace
        # array is frozen at construction.
        new = simple_trace.with_coords(
            simple_trace.lats + 0.001, simple_trace.lons - 0.001
        )
        assert new.times_s is simple_trace.times_s
        renamed = simple_trace.renamed("bob")
        assert renamed.lats is simple_trace.lats
        assert renamed.times_s is simple_trace.times_s
        retimed = simple_trace.with_times(simple_trace.times_s + 1.0)
        assert retimed.lats is simple_trace.lats

    def test_updated_trace_arrays_stay_immutable(self, simple_trace):
        new = simple_trace.with_coords(
            simple_trace.lats + 0.001, simple_trace.lons - 0.001
        )
        for trace in (new, simple_trace.renamed("bob"),
                      simple_trace.with_times(simple_trace.times_s + 1.0)):
            for arr in (trace.times_s, trace.lats, trace.lons):
                with pytest.raises(ValueError):
                    arr[0] = 0.0

    def test_trusted_constructor_freezes_arrays(self):
        times = np.asarray([0.0, 1.0])
        lats = np.asarray([1.0, 2.0])
        lons = np.asarray([3.0, 4.0])
        trace = Trace._from_trusted("u", times, lats, lons)
        assert trace == Trace("u", times, lats, lons)
        with pytest.raises(ValueError):
            trace.lats[0] = 9.0

    def test_slice_time_half_open(self, simple_trace):
        sub = simple_trace.slice_time(60.0, 180.0)
        assert sub.times_s.tolist() == [60.0, 120.0]

    def test_from_records_round_trip(self, simple_trace):
        rebuilt = Trace.from_records(list(simple_trace))
        assert rebuilt == simple_trace

    def test_from_records_mixed_users_rejected(self):
        records = [
            TraceRecord("a", 0.0, 0.0, 0.0),
            TraceRecord("b", 1.0, 0.0, 0.0),
        ]
        with pytest.raises(ValueError):
            Trace.from_records(records)

    def test_from_records_empty_rejected(self):
        with pytest.raises(ValueError):
            Trace.from_records([])
