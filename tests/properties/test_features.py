"""Tests of the dataset property extractors."""

import numpy as np
import pytest

from repro.properties import (
    DEFAULT_EXTRACTORS,
    PropertyExtractor,
    extract_features,
    feature_matrix,
)


class TestExtractors:
    def test_all_defaults_run_and_finite(self, taxi_dataset):
        features = extract_features(taxi_dataset)
        assert len(features) == len(DEFAULT_EXTRACTORS)
        assert all(np.isfinite(v) for v in features.values())

    def test_n_users(self, taxi_dataset):
        features = extract_features(taxi_dataset)
        assert features["n_users"] == len(taxi_dataset)

    def test_mean_records(self, taxi_dataset):
        features = extract_features(taxi_dataset)
        expected = np.mean([len(t) for t in taxi_dataset.traces])
        assert features["mean_records_per_user"] == pytest.approx(expected)

    def test_poi_count_positive_on_commuters(self, commuter_dataset):
        features = extract_features(commuter_dataset)
        assert features["mean_poi_count"] >= 2.0

    def test_uniqueness_in_unit_interval(self, commuter_dataset):
        features = extract_features(commuter_dataset)
        assert 0.0 <= features["top_cell_uniqueness"] <= 1.0

    def test_entropy_nonnegative(self, taxi_dataset):
        features = extract_features(taxi_dataset)
        assert features["cell_entropy_bits"] >= 0.0

    def test_custom_extractor(self, taxi_dataset):
        double_users = PropertyExtractor("double_users", lambda ds: 2 * len(ds))
        features = extract_features(taxi_dataset, [double_users])
        assert features == {"double_users": float(2 * len(taxi_dataset))}

    def test_extractor_names_unique(self):
        names = [e.name for e in DEFAULT_EXTRACTORS]
        assert len(set(names)) == len(names)

    def test_night_fraction_separates_workloads(
        self, taxi_dataset, commuter_dataset
    ):
        # Commuters sleep at home with the device on (overnight dwell
        # fixes); taxi shifts here start at t=0 and end by afternoon.
        taxi = extract_features(taxi_dataset)["night_activity_fraction"]
        commuters = extract_features(commuter_dataset)["night_activity_fraction"]
        assert 0.0 <= taxi <= 1.0
        assert 0.0 <= commuters <= 1.0
        assert commuters != taxi

    def test_trips_per_hour_positive_for_taxis(self, taxi_dataset):
        assert extract_features(taxi_dataset)["trips_per_hour"] > 0.0

    def test_inter_poi_distance_positive_for_commuters(self, commuter_dataset):
        # Home and work are distinct random anchors, far apart.
        value = extract_features(commuter_dataset)["mean_inter_poi_distance_m"]
        assert value > 100.0


class TestFeatureMatrix:
    def test_shape(self, taxi_dataset, commuter_dataset):
        m = feature_matrix([taxi_dataset, commuter_dataset])
        assert m.shape == (2, len(DEFAULT_EXTRACTORS))

    def test_rows_match_single_extraction(self, taxi_dataset, commuter_dataset):
        m = feature_matrix([taxi_dataset, commuter_dataset])
        single = extract_features(taxi_dataset)
        assert np.allclose(m[0], [single[e.name] for e in DEFAULT_EXTRACTORS])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            feature_matrix([])
