"""Tests of the PCA property ranking."""

import numpy as np
import pytest

from repro.properties import PcaResult, rank_properties, run_pca, select_properties


def _synthetic_matrix(n: int = 20):
    """Features where column 0 dominates variance and column 2 is constant."""
    rng = np.random.default_rng(0)
    dominant = rng.normal(0.0, 10.0, size=n)
    minor = rng.normal(0.0, 0.5, size=n)
    constant = np.full(n, 3.0)
    correlated = dominant * 0.9 + rng.normal(0.0, 0.1, size=n)
    return np.stack([dominant, minor, constant, correlated], axis=1)


NAMES = ["dominant", "minor", "constant", "correlated"]


class TestRunPca:
    def test_variance_ratios_descend_and_sum_to_one(self):
        result = run_pca(_synthetic_matrix(), NAMES)
        ratios = result.explained_variance_ratio
        assert np.all(np.diff(ratios) <= 1e-12)
        assert ratios.sum() == pytest.approx(1.0)

    def test_dominant_feature_ranked_first(self):
        result = run_pca(_synthetic_matrix(), NAMES)
        ranked = result.ranked_features()
        assert ranked[0] in ("dominant", "correlated")
        assert ranked[-1] == "constant"

    def test_constant_column_zero_importance(self):
        result = run_pca(_synthetic_matrix(), NAMES)
        importance = dict(zip(result.feature_names, result.importance()))
        assert importance["constant"] == pytest.approx(0.0, abs=1e-9)

    def test_n_components_limits(self):
        result = run_pca(_synthetic_matrix(), NAMES, n_components=2)
        assert result.n_components == 2
        assert result.components.shape == (2, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_pca(np.zeros((1, 3)), ["a", "b", "c"])
        with pytest.raises(ValueError):
            run_pca(np.zeros((5, 3)), ["a", "b"])
        with pytest.raises(ValueError):
            run_pca(np.zeros(5), ["a"])


class TestDatasetRanking:
    def test_rank_properties_runs(self, taxi_dataset, commuter_dataset):
        result = rank_properties([taxi_dataset, commuter_dataset])
        assert isinstance(result, PcaResult)
        assert len(result.ranked_features()) == len(result.feature_names)

    def test_select_properties_count(self, taxi_dataset, commuter_dataset):
        names = select_properties([taxi_dataset, commuter_dataset], n_select=3)
        assert len(names) == 3
        assert len(set(names)) == 3

    def test_select_zero_rejected(self, taxi_dataset, commuter_dataset):
        with pytest.raises(ValueError):
            select_properties([taxi_dataset, commuter_dataset], n_select=0)
