"""Fixtures for reporting tests: a ready-made sweep and fitted model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.framework import SweepPoint, SweepResult, fit_system_model


@pytest.fixture
def mock_sweep() -> SweepResult:
    sweep = SweepResult("mock", "shift_m")
    for shift in np.geomspace(1.0, 1000.0, 8):
        sweep.points.append(
            SweepPoint(
                params={"shift_m": float(shift)},
                privacy_mean=0.05 + 0.10 * float(np.log(shift)),
                privacy_std=0.0,
                utility_mean=1.00 - 0.08 * float(np.log(shift)),
                utility_std=0.0,
                n_replications=1,
            )
        )
    return sweep


@pytest.fixture
def mock_model(mock_sweep):
    return fit_system_model(mock_sweep, use_active_region=False)
