"""Tests of the plain-text reporting helpers."""

import pytest

from repro.framework import Recommendation
from repro.report import (
    format_table,
    model_summary,
    recommendation_summary,
    sweep_table,
)


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["name", "value"], [["a", 1], ["bcd", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        # Columns right-justified to equal width.
        assert lines[2].endswith("1")
        assert lines[3].endswith("22")

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456], [1.5e-7], [0.0]])
        assert "0.1235" in text
        assert "1.500e-07" in text

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestSummaries:
    def test_sweep_table(self, mock_sweep):
        text = sweep_table(mock_sweep)
        assert "shift_m" in text
        assert "privacy" in text
        assert len(text.splitlines()) == 2 + len(mock_sweep)

    def test_model_summary_mentions_paper_values(self, mock_model):
        text = model_summary(mock_model)
        assert "0.84" in text   # paper's a
        assert "R^2" in text
        assert "ln(shift_m)" in text

    def test_feasible_recommendation_summary(self):
        rec = Recommendation(
            param_name="epsilon",
            value=0.01,
            feasible=True,
            interval=(0.005, 0.02),
            predicted_privacy=0.08,
            predicted_utility=0.82,
            notes="policy=max_utility",
        )
        text = recommendation_summary(rec)
        assert "0.01" in text
        assert "0.820" in text

    def test_infeasible_recommendation_summary(self):
        rec = Recommendation(
            param_name="epsilon",
            value=None,
            feasible=False,
            interval=(1.0, 0.5),
            predicted_privacy=None,
            predicted_utility=None,
            notes="objectives are jointly infeasible on this dataset",
        )
        text = recommendation_summary(rec)
        assert "INFEASIBLE" in text
