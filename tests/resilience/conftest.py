"""Hygiene for the process-global resilience singletons.

The injector, the breaker registry and the event log are process-wide
by design (production code probes them from every layer), which means
a chaos test that arms faults or opens breakers would leak state into
its neighbours.  Every test in this package gets a clean slate on the
way out.
"""

import pytest

from repro.resilience import (
    default_injector,
    default_registry,
    reset_events,
)


@pytest.fixture(autouse=True)
def _clean_resilience_state():
    default_injector().clear()
    default_registry().reset()
    reset_events()
    yield
    default_injector().clear()
    default_registry().reset()
    reset_events()
