"""Chaos suite: the real daemon, booted under injected faults.

Each scenario starts ``repro-lppm serve`` in a subprocess with a
``--fault-spec`` and pins the resilience layer's end-to-end contract:
a worker crash mid-sweep is invisible in the payload (bit-identical to
a fault-free run), a full disk degrades the daemon without costing a
single 2xx, and a slow handler past its deadline surfaces as a typed
504 within the acceptance bound — never a hang, never a bare 500.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.service import HttpServiceClient, ServiceClientError

SRC_ROOT = Path(repro.__file__).parents[1]
_LISTENING = re.compile(r"listening on (http://[\d.]+:\d+)")

SWEEP_BODY = {
    "dataset": {"workload": "taxi", "users": 3, "seed": 11},
    "points": 4,
    "replications": 1,
}


class _Daemon:
    """One ``serve`` subprocess: boot, talk, drain, read its log."""

    def __init__(self, *extra_args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_ROOT) + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else ""
        )
        env.pop("REPRO_FAULT_SPEC", None)
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "--workers", "1", "--grace", "5",
             *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        self.base_url = None
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                break
            match = _LISTENING.search(line)
            if match:
                self.base_url = match.group(1)
                break
        assert self.base_url is not None, "daemon never announced itself"

    def stop(self) -> str:
        """SIGTERM the daemon and return its remaining output."""
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10.0)
        return self.process.stdout.read() or ""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()


class TestWorkerCrashMidSweep:
    def test_crashed_pool_sweep_is_bit_identical(self):
        """pool.crash:1 kills a pool worker mid-sweep; the rebuilt
        pool replays the batch and the payload matches a fault-free
        daemon's bit for bit."""
        with _Daemon("--fault-spec", "pool.crash:1",
                     "--engine", "process", "--jobs", "2") as chaotic:
            client = HttpServiceClient(chaotic.base_url, timeout_s=120.0)
            crashed = client.sweep(**SWEEP_BODY)
            resilience = client.metrics()["resilience"]
            log = chaotic.stop()
        assert resilience["events"].get("pool.rebuilt", 0) >= 1
        assert resilience["faults"]["fired"].get("pool.crash") == 1
        assert "pool.rebuilt" in log or resilience["events"]

        with _Daemon("--engine", "process", "--jobs", "2") as clean:
            client = HttpServiceClient(clean.base_url, timeout_s=120.0)
            fault_free = client.sweep(**SWEEP_BODY)
        assert crashed["points"] == fault_free["points"]

    def test_double_crash_degrades_to_serial(self):
        """A second crash on the rebuilt pool falls back to the serial
        backend — slower, still correct, and logged as degradation."""
        with _Daemon("--fault-spec", "pool.crash:2",
                     "--engine", "process", "--jobs", "2") as daemon:
            client = HttpServiceClient(daemon.base_url, timeout_s=180.0)
            result = client.sweep(**SWEEP_BODY)
            events = client.metrics()["resilience"]["events"]
        assert len(result["points"]) == 4
        assert events.get("pool.serial-fallback", 0) >= 1


class TestDiskFullMidSpill:
    def test_degraded_tiers_keep_answering_2xx(self, tmp_path):
        """Every disk.write fails, yet every request answers 2xx; the
        tier breakers open and healthz flips to degraded."""
        with _Daemon("--fault-spec", "disk.write:500",
                     "--cache-dir", str(tmp_path)) as daemon:
            client = HttpServiceClient(daemon.base_url, timeout_s=120.0)
            for seed in range(4):
                result = client.sweep(
                    dataset={"workload": "taxi", "users": 3, "seed": seed},
                    points=2, replications=1,
                )
                assert len(result["points"]) == 2
            health = client.healthz()
            metrics = client.metrics()["resilience"]
        assert health["status"] == "degraded"
        assert health["degraded"], "no tier reported degraded"
        open_tiers = [
            tier for tier, snap in metrics["breakers"].items()
            if snap["state"] == "open"
        ]
        assert open_tiers, f"no open breakers in {metrics['breakers']}"
        assert metrics["events"].get("breaker.open", 0) >= 1

    def test_sweep_result_survives_the_full_disk(self, tmp_path):
        """Degraded persistence never changes answers: the faulted
        daemon's payload matches a healthy daemon's."""
        with _Daemon("--fault-spec", "disk.write:500",
                     "--cache-dir", str(tmp_path)) as degraded:
            client = HttpServiceClient(degraded.base_url, timeout_s=120.0)
            faulted = client.sweep(**SWEEP_BODY)
        with _Daemon() as healthy:
            client = HttpServiceClient(healthy.base_url, timeout_s=120.0)
            clean = client.sweep(**SWEEP_BODY)
        assert faulted["points"] == clean["points"]


class TestDeadlinePastSlowHandler:
    def test_typed_504_within_the_bound(self):
        """A 5 s handler stall against a 300 ms deadline answers a
        typed 504 in < deadline + 250 ms."""
        with _Daemon("--fault-spec", "handler.slow:1:5.0") as daemon:
            client = HttpServiceClient(
                daemon.base_url, timeout_s=30.0,
                retries=0,
                headers={"X-Request-Deadline-Ms": "300"},
            )
            started = time.monotonic()
            with pytest.raises(ServiceClientError) as excinfo:
                client.datasets()
            elapsed = time.monotonic() - started
            # A fresh request without the stalled fault is unharmed.
            assert "error" not in client.datasets()
        assert excinfo.value.status == 504
        assert excinfo.value.code == "deadline-exceeded"
        assert elapsed < 0.300 + 0.250
