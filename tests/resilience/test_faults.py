"""Unit coverage of the fault injector and the circuit breakers.

These are the mechanisms the chaos suite leans on, so their own
semantics are pinned first: spec parsing, counted firing, the
closed -> open -> half-open -> closed breaker walk, and the guarded
writer's recorded-miss contract.
"""

from __future__ import annotations

import pytest

from repro.framework.store import read_eval_record, save_eval_record
from repro.resilience import (
    BreakerRegistry,
    CircuitBreaker,
    FaultInjector,
    default_injector,
    events_by_kind,
    fire,
    write_guarded,
)
from repro.resilience.faults import parse_spec


class TestSpecParsing:
    def test_counted_clause(self):
        faults = parse_spec("pool.crash:2")
        assert faults["pool.crash"].remaining == 2
        assert faults["pool.crash"].value is None

    def test_value_and_star_clauses(self):
        faults = parse_spec("handler.slow:*:0.25,disk.write:1:partial")
        assert faults["handler.slow"].remaining is None
        assert faults["handler.slow"].value == "0.25"
        assert faults["disk.write"].value == "partial"

    @pytest.mark.parametrize("bad", [
        "pool.crash",               # no count
        "nope.nope:1",              # unknown point
        "disk.write:zero",          # non-integer count
        "disk.write:0",             # count below 1
    ])
    def test_bad_clauses_are_typed_errors(self, bad):
        with pytest.raises(ValueError):
            parse_spec(bad)

    def test_empty_clauses_are_skipped(self):
        assert parse_spec(" , ,") == {}


class TestFaultInjector:
    def test_inactive_fire_is_none(self):
        injector = FaultInjector()
        assert injector.fire("disk.write") is None

    def test_counts_are_consumed(self):
        injector = FaultInjector()
        injector.configure("handler.error:2")
        assert injector.fire("handler.error") is True
        assert injector.fire("handler.error") is True
        assert injector.fire("handler.error") is None
        assert injector.active is False

    def test_value_rides_along(self):
        injector = FaultInjector()
        injector.configure("handler.slow:1:1.5")
        assert injector.fire("handler.slow") == "1.5"

    def test_star_never_exhausts(self):
        injector = FaultInjector()
        injector.configure("disk.read:*")
        for _ in range(10):
            assert injector.fire("disk.read") is True
        assert injector.active is True

    def test_unarmed_point_is_none_while_active(self):
        injector = FaultInjector()
        injector.configure("disk.read:1")
        assert injector.fire("disk.write") is None

    def test_snapshot_reports_armed_and_fired(self):
        injector = FaultInjector()
        injector.configure("disk.write:3,handler.slow:*:0.1")
        injector.fire("disk.write")
        snap = injector.snapshot()
        assert snap["active"] is True
        assert snap["armed"] == {"disk.write": 2, "handler.slow": "*"}
        assert snap["fired"] == {"disk.write": 1}

    def test_module_level_fire_uses_default(self):
        default_injector().configure("handler.error:1")
        assert fire("handler.error") is True
        assert fire("handler.error") is None


class TestCircuitBreaker:
    def _clocked(self, **kwargs):
        now = [0.0]

        def clock():
            return now[0]

        return now, CircuitBreaker("t", clock=clock, **kwargs)

    def test_opens_after_consecutive_failures(self):
        _, breaker = self._clocked(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.allow() is False

    def test_success_resets_the_streak(self):
        _, breaker = self._clocked(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_heals(self):
        now, breaker = self._clocked(failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure()
        assert breaker.allow() is False
        now[0] = 6.0
        assert breaker.allow() is True          # the probe
        assert breaker.state == "half_open"
        assert breaker.allow() is False         # one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() is True

    def test_failed_probe_reopens(self):
        now, breaker = self._clocked(failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure()
        now[0] = 6.0
        assert breaker.allow() is True
        breaker.record_failure()
        assert breaker.state == "open"
        now[0] = 8.0
        assert breaker.allow() is False         # cooldown restarted

    def test_open_and_close_are_events(self):
        _, breaker = self._clocked(failure_threshold=1, cooldown_s=0.0)
        breaker.record_failure()
        assert breaker.allow() is True
        breaker.record_success()
        kinds = events_by_kind()
        assert kinds.get("breaker.open") == 1
        assert kinds.get("breaker.closed") == 1


class TestWriteGuarded:
    def test_success_passes_through(self, tmp_path):
        registry = BreakerRegistry()
        target = tmp_path / "r.json"
        ok = write_guarded(
            "tier",
            lambda: save_eval_record(
                {"fingerprint": "f", "privacy": 1.0, "utility": 2.0},
                target,
            ),
            registry=registry,
        )
        assert ok is True
        assert read_eval_record(target)["privacy"] == 1.0
        assert registry.breaker("tier").snapshot()["successes"] == 1

    def test_oserror_is_a_recorded_miss(self, tmp_path):
        registry = BreakerRegistry(failure_threshold=2)

        def boom():
            raise OSError(28, "no space left on device")

        assert write_guarded("tier", boom, registry=registry) is False
        assert registry.degraded() == []
        assert write_guarded("tier", boom, registry=registry) is False
        assert registry.degraded() == ["tier"]
        # Open breaker: the write is skipped without being attempted.
        calls = []
        assert write_guarded(
            "tier", lambda: calls.append(1), registry=registry
        ) is False
        assert calls == []

    def test_non_oserror_propagates(self):
        registry = BreakerRegistry()

        def bug():
            raise TypeError("not serialisable")

        with pytest.raises(TypeError):
            write_guarded("tier", bug, registry=registry)

    def test_registry_snapshot_shape(self):
        registry = BreakerRegistry()
        registry.breaker("a").record_failure()
        snap = registry.snapshot()
        assert snap["a"]["failures"] == 1
        assert snap["a"]["state"] == "closed"


class TestInjectedStoreFaults:
    def test_disk_write_fault_is_enospc(self, tmp_path):
        from repro.framework.store import write_json_atomic

        default_injector().configure("disk.write:1")
        with pytest.raises(OSError) as excinfo:
            write_json_atomic({"x": 1}, tmp_path / "x.json")
        assert excinfo.value.errno == 28
        # The fault consumed itself: the retry lands.
        write_json_atomic({"x": 1}, tmp_path / "x.json")

    def test_partial_write_fault_heals_via_quarantine(self, tmp_path):
        target = tmp_path / "r.json"
        record = {"fingerprint": "f", "privacy": 0.5, "utility": 0.9}
        default_injector().configure("disk.write:1:partial")
        with pytest.raises(OSError):
            save_eval_record(record, target)
        assert target.exists()  # the torn file really is on disk
        # A tolerant reader quarantines the torn file and misses.
        assert read_eval_record(target) is None
        assert not target.exists()
        assert target.with_name("r.json.corrupt").exists()
        # The key heals on the next write.
        save_eval_record(record, target)
        assert read_eval_record(target)["utility"] == 0.9

    def test_disk_read_fault_is_a_tolerant_miss(self, tmp_path):
        target = tmp_path / "r.json"
        record = {"fingerprint": "f", "privacy": 0.5, "utility": 0.9}
        save_eval_record(record, target)
        default_injector().configure("disk.read:1")
        assert read_eval_record(target) is None
        # The unreadable file was quarantined; a rewrite heals the key.
        save_eval_record(record, target)
        assert read_eval_record(target)["privacy"] == 0.5
