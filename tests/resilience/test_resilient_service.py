"""In-process resilience semantics of the service pipeline.

Every scenario here runs through the real middleware onion via
:class:`ServiceClient` (or raw ``service.handle`` where response
headers matter): deadlines become typed 504s, overload becomes a typed
503 with ``Retry-After``, drains advertise their backoff, injected
handler faults stay typed, and a dying disk degrades the worker
without costing a single 2xx.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.resilience import default_injector, default_registry
from repro.service import ConfigService, ServiceClient, ServiceClientError
from repro.service.client import _BaseClient

TAXI = {"workload": "taxi", "users": 3, "seed": 7}


@pytest.fixture()
def client():
    with ServiceClient(ConfigService(workers=1)) as c:
        yield c


class TestDeadlines:
    @pytest.mark.parametrize("raw", ["abc", "-5", "0", "inf"])
    def test_invalid_deadline_is_typed_400(self, client, raw):
        response = client.service.handle(
            "POST", "/sweep",
            {"dataset": TAXI, "points": 2, "replications": 1},
            headers={"X-Request-Deadline-Ms": raw},
        )
        assert response.status == 400
        assert response.body["error"]["code"] == "invalid-deadline"

    def test_expired_deadline_cancels_the_sweep(self, client):
        """A hopeless budget surfaces as a 504 through the engine's
        between-chunk cancellation seam, not as a full sweep."""
        response = client.service.handle(
            "POST", "/sweep",
            {"dataset": TAXI, "points": 4, "replications": 1},
            headers={"X-Request-Deadline-Ms": "0.01"},
        )
        assert response.status == 504
        assert response.body["error"]["code"] == "deadline-exceeded"
        assert response.body["error"]["details"]["deadline_ms"] == 0.01

    def test_slow_handler_respects_the_deadline(self, client):
        default_injector().configure("handler.slow:1:5.0")
        started = time.monotonic()
        response = client.service.handle(
            "GET", "/datasets", None,
            headers={"X-Request-Deadline-Ms": "150"},
        )
        elapsed = time.monotonic() - started
        assert response.status == 504
        assert response.body["error"]["code"] == "deadline-exceeded"
        # The acceptance bound: deadline + 250 ms, not the 5 s sleep.
        assert elapsed < 0.150 + 0.250

    def test_generous_deadline_changes_nothing(self, client):
        response = client.service.handle(
            "POST", "/sweep",
            {"dataset": TAXI, "points": 2, "replications": 1},
            headers={"X-Request-Deadline-Ms": "60000"},
        )
        assert response.status == 200
        assert len(response.body["points"]) == 2
        snap = client.service.deadline.snapshot()
        assert snap["with_deadline"] >= 1

    def test_deadlineless_requests_skip_the_machinery(self, client):
        assert client.healthz()["status"] == "ok"
        assert client.service.deadline.snapshot()["with_deadline"] == 0


class TestLoadShedding:
    def test_excess_request_is_shed_with_retry_after(self):
        service = ConfigService(workers=1, max_in_flight=1)
        default_injector().configure("handler.slow:1:1.0")
        first = {}

        def occupy():
            first["response"] = service.handle("GET", "/datasets")

        holder = threading.Thread(target=occupy)
        holder.start()
        try:
            # Wait until the slow request really is in flight.
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                if service.load_shed.snapshot()["in_flight"] >= 1:
                    break
                time.sleep(0.01)
            shed = service.handle("GET", "/datasets")
        finally:
            holder.join()
            service.close()
        assert shed.status == 503
        assert shed.body["error"]["code"] == "overloaded"
        assert shed.headers["Retry-After"] == "1"
        assert first["response"].status == 200
        assert service.load_shed.snapshot()["shed"] == 1

    def test_probes_are_never_shed(self):
        service = ConfigService(workers=1, max_in_flight=1)
        default_injector().configure("handler.slow:1:0.5")
        try:
            holder = threading.Thread(
                target=service.handle, args=("GET", "/datasets")
            )
            holder.start()
            time.sleep(0.1)
            probe = service.handle("GET", "/healthz")
            holder.join()
        finally:
            service.close()
        assert probe.status == 200

    def test_disabled_shedder_stays_in_pipeline(self, client):
        assert "load_shed" in client.metrics()["pipeline"]
        snap = client.service.load_shed.snapshot()
        assert snap["max_in_flight"] is None
        assert snap["shed"] == 0


class TestDrainBackoff:
    def test_draining_job_manager_advertises_retry_after(self, client):
        client.service.jobs.close(grace_s=0.1)
        response = client.service.handle("POST", "/jobs", {
            "endpoint": "sweep",
            "body": {"dataset": TAXI, "points": 2, "replications": 1},
        })
        assert response.status == 503
        assert response.body["error"]["code"] == "shutting-down"
        assert response.headers["Retry-After"] == "1"

    def test_draining_streaming_layer_advertises_retry_after(self, client):
        client.service.state.streaming.close()
        response = client.service.handle("POST", "/stream/ride", {
            "records": [[0.0, 37.76, -122.42]],
        })
        assert response.status == 503
        assert response.body["error"]["code"] == "shutting-down"
        assert response.headers["Retry-After"] == "1"


class TestInjectedHandlerFaults:
    def test_handler_error_is_a_typed_500(self, client):
        default_injector().configure("handler.error:1")
        response = client.service.handle("GET", "/datasets")
        assert response.status == 500
        assert "error" in response.body
        # The fault consumed itself; the next request is clean.
        assert "error" not in client.datasets()

    def test_faults_do_not_touch_healthz(self, client):
        default_injector().configure("handler.error:*")
        assert client.healthz()["status"] == "ok"


class TestDegradedDiskTiers:
    def test_full_disk_degrades_but_keeps_serving(self, tmp_path):
        service = ConfigService(workers=1, shared_dir=tmp_path)
        default_injector().configure("disk.write:*")
        try:
            with ServiceClient(service) as client:
                # Each sweep's response-spill write fails; after the
                # breaker threshold the tier opens.  Every request
                # still answers 2xx.
                for seed in range(4):
                    result = client.sweep(
                        {"workload": "taxi", "users": 3, "seed": seed},
                        points=2, replications=1,
                    )
                    assert len(result["points"]) == 2
                health = client.healthz()
                assert health["status"] == "degraded"
                assert "response_spill" in health["degraded"]
                breakers = client.metrics()["resilience"]["breakers"]
                assert breakers["response_spill"]["state"] == "open"
                assert breakers["response_spill"]["failures"] >= 3
        finally:
            service.close()

    def test_healed_disk_closes_the_breaker(self, tmp_path):
        registry = default_registry()
        service = ConfigService(workers=1, shared_dir=tmp_path)
        default_injector().configure("disk.write:*")
        try:
            with ServiceClient(service) as client:
                for seed in range(4):
                    client.sweep(
                        {"workload": "taxi", "users": 3, "seed": seed},
                        points=2, replications=1,
                    )
                assert registry.degraded() == ["response_spill"]
                # The disk heals and the cooldown elapses: the next
                # spill write is the half-open probe, and it closes
                # the breaker.
                default_injector().clear()
                breaker = registry.breaker("response_spill")
                breaker._retry_at = breaker._clock() - 1.0
                client.sweep(
                    {"workload": "taxi", "users": 3, "seed": 99},
                    points=2, replications=1,
                )
                assert registry.degraded() == []
                assert client.healthz()["status"] == "ok"
        finally:
            service.close()


class _ScriptedClient(_BaseClient):
    """A client whose transport replays a scripted response sequence."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0
        self.last_headers = {}

    def _request(self, method, path, body):
        self.calls += 1
        step = self.script.pop(0)
        if isinstance(step, Exception):
            raise step
        return step


def _transient(status, retry_after=None):
    error = ServiceClientError(status, {"code": "transient"})
    return error, ({"Retry-After": retry_after}
                   if retry_after is not None else {})


class TestWaitTransientTolerance:
    def _scripted_wait(self, steps, **kwargs):
        client = _ScriptedClient([step for step, _ in steps])
        headers = [h for _, h in steps]

        original = client._request

        def tracked(method, path, body):
            client.last_headers = headers[client.calls]
            return original(method, path, body)

        client._request = tracked
        return client, client.wait("job-x-1", **kwargs)

    def test_transient_503_polls_through(self):
        done = {"status": "done", "result": {"ok": True}}
        client, snapshot = self._scripted_wait([
            _transient(503, "0.01"),
            (done, {}),
        ], timeout_s=5.0)
        assert snapshot["status"] == "done"
        assert client.calls == 2

    def test_transient_429_polls_through(self):
        done = {"status": "done"}
        client, snapshot = self._scripted_wait([
            _transient(429, "0.01"),
            _transient(429, None),
            (done, {}),
        ], timeout_s=5.0, poll_s=0.01)
        assert snapshot["status"] == "done"
        assert client.calls == 3

    def test_hard_errors_still_raise(self):
        error = ServiceClientError(404, {"code": "job-not-found"})
        client = _ScriptedClient([error])
        with pytest.raises(ServiceClientError) as excinfo:
            client.wait("job-x-1", timeout_s=5.0)
        assert excinfo.value.status == 404

    def test_unbroken_transience_times_out(self):
        steps = [_transient(503, "0.01") for _ in range(50)]
        client = _ScriptedClient([step for step, _ in steps])
        client.last_headers = {"Retry-After": "0.01"}
        with pytest.raises(TimeoutError) as excinfo:
            client.wait("job-x-1", timeout_s=0.15, poll_s=0.01)
        assert "transient 503" in str(excinfo.value)


class TestHttpRetries:
    def _client(self, **kwargs):
        from repro.service import HttpServiceClient

        return HttpServiceClient("http://127.0.0.1:9", **kwargs)

    def test_transient_503_is_retried(self, monkeypatch):
        client = self._client(retries=2, backoff_s=0.001)
        attempts = []

        def flaky(method, path, body):
            attempts.append(method)
            if len(attempts) < 3:
                client.last_headers = {"Retry-After": "0.01"}
                raise ServiceClientError(503, {"code": "overloaded"})
            return {"ok": True}

        monkeypatch.setattr(client, "_request_once", flaky)
        assert client._request("POST", "/sweep", {}) == {"ok": True}
        assert len(attempts) == 3
        assert client.retried == 2

    def test_retries_exhaust_to_the_typed_error(self, monkeypatch):
        client = self._client(retries=1, backoff_s=0.001)

        def always_503(method, path, body):
            client.last_headers = {"Retry-After": "0.01"}
            raise ServiceClientError(503, {"code": "overloaded"})

        monkeypatch.setattr(client, "_request_once", always_503)
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/jobs", None)
        assert excinfo.value.status == 503

    def test_connection_errors_retry_only_idempotent(self, monkeypatch):
        import urllib.error

        client = self._client(retries=2, backoff_s=0.001)
        attempts = []

        def refused(method, path, body):
            attempts.append(method)
            raise urllib.error.URLError(OSError(111, "refused"))

        monkeypatch.setattr(client, "_request_once", refused)
        with pytest.raises(urllib.error.URLError):
            client._request("POST", "/sweep", {})
        assert len(attempts) == 1  # non-idempotent: no blind re-fire
        attempts.clear()
        with pytest.raises(urllib.error.URLError):
            client._request("GET", "/healthz", None)
        assert len(attempts) == 3  # idempotent: initial + 2 retries

    def test_non_transient_statuses_never_retry(self, monkeypatch):
        client = self._client(retries=3, backoff_s=0.001)
        attempts = []

        def not_found(method, path, body):
            attempts.append(method)
            raise ServiceClientError(404, {"code": "job-not-found"})

        monkeypatch.setattr(client, "_request_once", not_found)
        with pytest.raises(ServiceClientError):
            client._request("GET", "/jobs/nope", None)
        assert len(attempts) == 1
