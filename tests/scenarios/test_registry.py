"""Scenario spec validation, fingerprints, and registry LRU caching."""

import os

import pytest

from repro.mobility import write_csv
from repro.scenarios import (
    SCENARIO_KINDS,
    ScenarioRegistry,
    ScenarioSpec,
    available_scenarios,
    register_scenario,
    resolve_scenario,
)
from repro.synth import TaxiFleetConfig, generate_taxi_fleet


class TestSpecValidation:
    def test_kinds_cover_generators_and_formats(self):
        assert set(SCENARIO_KINDS) == {
            "taxi", "commuters", "random_waypoint", "levy_flight",
            "csv", "geolife", "cabspotting",
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ScenarioSpec.make("x", "parquet")

    @pytest.mark.parametrize("name", ["", "has space", ".dot", "a/b", 7])
    def test_bad_names_rejected(self, name):
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec.make(name, "taxi")

    def test_unknown_params_rejected(self):
        with pytest.raises(ValueError, match="nope"):
            ScenarioSpec.make("x", "taxi", {"nope": 1})

    def test_users_alias_conflict_rejected(self):
        with pytest.raises(ValueError, match="users"):
            ScenarioSpec.make("x", "taxi", {"users": 3, "n_cabs": 4})

    def test_config_value_validation_applies(self):
        # The synth config's own __post_init__ runs at make() time.
        with pytest.raises(ValueError):
            ScenarioSpec.make("x", "taxi", {"users": 0})

    def test_file_kind_requires_path(self):
        with pytest.raises(ValueError, match="path"):
            ScenarioSpec.make("x", "csv")
        with pytest.raises(ValueError, match="path"):
            ScenarioSpec.make("x", "csv", {"path": ""})

    def test_file_kind_rejects_extra_params(self):
        with pytest.raises(ValueError, match="users"):
            ScenarioSpec.make("x", "csv", {"path": "a.csv", "users": 3})

    def test_with_params_merges_and_revalidates(self):
        spec = ScenarioSpec.make("x", "taxi", {"users": 3})
        merged = spec.with_params(seed=9)
        assert merged.params_dict == {"users": 3, "seed": 9}
        with pytest.raises(ValueError):
            spec.with_params(bogus=1)


class TestFingerprints:
    def test_equivalent_spellings_share_a_fingerprint(self):
        # 'users' is an alias for n_cabs; defaults canonicalise in.
        via_alias = ScenarioSpec.make("a", "taxi", {"users": 30})
        spelled = ScenarioSpec.make("b", "taxi", {"n_cabs": 30})
        defaults = ScenarioSpec.make("c", "taxi", {})
        assert via_alias.fingerprint() == spelled.fingerprint()
        assert via_alias.fingerprint() == defaults.fingerprint()

    def test_different_params_differ(self):
        a = ScenarioSpec.make("a", "taxi", {"seed": 0})
        b = ScenarioSpec.make("a", "taxi", {"seed": 1})
        assert a.fingerprint() != b.fingerprint()

    def test_name_does_not_enter_the_fingerprint(self):
        a = ScenarioSpec.make("a", "commuters", {"users": 4})
        b = ScenarioSpec.make("b", "commuters", {"users": 4})
        assert a.fingerprint() == b.fingerprint()

    def test_file_fingerprint_tracks_content_identity(self, tmp_path):
        dataset = generate_taxi_fleet(TaxiFleetConfig(n_cabs=2, seed=0))
        path = tmp_path / "d.csv"
        write_csv(dataset, path)
        spec = ScenarioSpec.make("f", "csv", {"path": str(path)})
        before = spec.fingerprint()
        os.utime(path, (1, 1))
        assert spec.fingerprint() != before

    def test_file_fingerprint_missing_path_raises(self, tmp_path):
        spec = ScenarioSpec.make(
            "f", "csv", {"path": str(tmp_path / "absent.csv")}
        )
        with pytest.raises(FileNotFoundError):
            spec.fingerprint()

    def test_directory_fingerprint_sees_new_files(self, tmp_path):
        dataset = generate_taxi_fleet(TaxiFleetConfig(n_cabs=1, seed=0))
        from repro.mobility import write_cabspotting

        write_cabspotting(dataset, tmp_path)
        spec = ScenarioSpec.make("f", "cabspotting", {"path": str(tmp_path)})
        before = spec.fingerprint()
        (tmp_path / "new_extra.txt").write_text("37.0 -122.0 0 100\n")
        assert spec.fingerprint() != before


class TestRegistry:
    def test_builtins_present(self):
        registry = ScenarioRegistry()
        for name in ("taxi", "commuters", "random_waypoint",
                     "levy_flight", "taxi-small", "commuters-small"):
            assert name in registry

    def test_unknown_name_is_keyerror(self):
        with pytest.raises(KeyError, match="nope"):
            ScenarioRegistry().get("nope")

    def test_register_idempotent_conflict_replace(self):
        registry = ScenarioRegistry(include_builtins=False)
        spec = ScenarioSpec.make("s", "taxi", {"users": 2})
        registry.register(spec)
        registry.register(spec)  # identical: fine
        other = ScenarioSpec.make("s", "taxi", {"users": 3})
        with pytest.raises(ValueError, match="replace"):
            registry.register(other)
        registry.register(other, replace=True)
        assert registry.get("s").params_dict == {"users": 3}

    def test_resolution_is_deterministic_across_registries(self):
        a = ScenarioRegistry().resolve("taxi-small")
        b = ScenarioRegistry().resolve("taxi", users=5, seed=42)
        assert a.users == b.users
        for user in a.users:
            assert a[user] == b[user]

    def test_lru_returns_same_object_and_counts_hits(self):
        registry = ScenarioRegistry()
        first = registry.resolve("taxi", users=2, seed=3)
        second = registry.resolve("taxi", n_cabs=2, seed=3)
        assert second is first
        stats = registry.cache_stats()
        assert stats == {
            "entries": 1, "capacity": 8, "hits": 1, "misses": 1,
        }

    def test_lru_evicts_least_recently_used(self):
        registry = ScenarioRegistry(cache_size=2)
        a = registry.resolve("taxi", users=2, seed=0)
        registry.resolve("taxi", users=2, seed=1)
        # Touch a: it becomes most recent, so seed=1 is the victim.
        assert registry.resolve("taxi", users=2, seed=0) is a
        registry.resolve("taxi", users=2, seed=2)
        assert registry.resolve("taxi", users=2, seed=0) is a
        assert registry.cache_stats()["entries"] == 2

    def test_overrides_resolve_through_base_spec(self):
        registry = ScenarioRegistry()
        small = registry.resolve("taxi-small")
        # Overriding the preset's own parameter wins.
        smaller = registry.resolve("taxi-small", users=2)
        assert len(small) == 5 and len(smaller) == 2

    def test_clear_cache_keeps_specs(self):
        registry = ScenarioRegistry()
        registry.resolve("taxi", users=2, seed=0)
        registry.clear_cache()
        assert registry.cache_stats()["entries"] == 0
        assert "taxi" in registry

    def test_file_backed_scenario_rereads_after_edit(self, tmp_path):
        registry = ScenarioRegistry(include_builtins=False)
        path = tmp_path / "d.csv"
        write_csv(generate_taxi_fleet(TaxiFleetConfig(n_cabs=2, seed=0)),
                  path)
        registry.register(
            ScenarioSpec.make("disk", "csv", {"path": str(path)})
        )
        first = registry.resolve("disk")
        write_csv(generate_taxi_fleet(TaxiFleetConfig(n_cabs=3, seed=0)),
                  path)
        os.utime(path, (2_000_000_000, 2_000_000_000))
        second = registry.resolve("disk")
        assert len(first) == 2 and len(second) == 3


class TestDefaultRegistry:
    def test_module_level_helpers_share_one_registry(self):
        register_scenario(
            "test-default-reg", "taxi", {"users": 2, "seed": 11},
            replace=True,
        )
        assert "test-default-reg" in available_scenarios()
        dataset = resolve_scenario("test-default-reg")
        assert len(dataset) == 2
