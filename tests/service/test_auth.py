"""Adversarial tests of API-key auth and per-tenant isolation.

Pins the hardening PR's auth claims:

* every denial path is typed — missing key 401, unknown key 401,
  revoked key 403 — and counted in ``/metrics``;
* anonymous mode keeps every pre-auth client working unchanged;
* ``GET /healthz`` and ``GET /metrics`` stay unauthenticated even on a
  keys-required service;
* key files parse with line-precise errors;
* tenants are isolated end-to-end: scenario registries, response-cache
  entries and async jobs of one tenant are unreachable from another.
"""

import pytest

from repro.cli import main as cli_main
from repro.service import (
    ANONYMOUS_TENANT,
    ApiKeyStore,
    ConfigService,
    ServiceClient,
    ServiceClientError,
)

TAXI = {"workload": "taxi", "users": 3, "seed": 1}

ALICE_KEY = "alice-secret-key"
BOB_KEY = "bob-secret-key"


def keyed_store() -> ApiKeyStore:
    store = ApiKeyStore()
    store.add(ALICE_KEY, "alice")
    store.add(BOB_KEY, "bob")
    return store


@pytest.fixture
def service():
    """A keys-required service (anonymous denied) with two tenants."""
    svc = ConfigService(api_keys=keyed_store())
    yield svc
    svc.close()


@pytest.fixture
def alice(service):
    return ServiceClient(service, api_key=ALICE_KEY)


@pytest.fixture
def bob(service):
    return ServiceClient(service, api_key=BOB_KEY)


class TestDenials:
    def test_missing_key_is_401(self, service):
        with pytest.raises(ServiceClientError) as excinfo:
            ServiceClient(service).datasets()
        assert excinfo.value.status == 401
        assert excinfo.value.code == "missing-api-key"

    def test_unknown_key_is_401(self, service):
        with pytest.raises(ServiceClientError) as excinfo:
            ServiceClient(service, api_key="not-a-real-key").datasets()
        assert excinfo.value.status == 401
        assert excinfo.value.code == "invalid-api-key"

    def test_revoked_key_is_403(self, service, alice):
        assert alice.datasets()["tenant"] == "alice"
        assert service.auth.store.revoke(ALICE_KEY) is True
        with pytest.raises(ServiceClientError) as excinfo:
            alice.datasets()
        assert excinfo.value.status == 403
        assert excinfo.value.code == "revoked-api-key"

    def test_revoked_key_can_be_reinstated(self, service, alice):
        service.auth.store.revoke(ALICE_KEY)
        with pytest.raises(ServiceClientError):
            alice.datasets()
        service.auth.store.add(ALICE_KEY, "alice")
        assert alice.datasets()["tenant"] == "alice"

    def test_bad_key_denied_even_when_anonymous_allowed(self):
        # Presenting a wrong credential is an error, never a silent
        # downgrade to anonymous.
        svc = ConfigService(api_keys=keyed_store(), allow_anonymous=True)
        try:
            assert ServiceClient(svc).healthz()["status"] == "ok"
            with pytest.raises(ServiceClientError) as excinfo:
                ServiceClient(svc, api_key="wrong").datasets()
            assert excinfo.value.code == "invalid-api-key"
        finally:
            svc.close()

    def test_denials_are_counted(self, service):
        for key in (None, "wrong", "wrong-again"):
            with pytest.raises(ServiceClientError):
                ServiceClient(service, api_key=key).datasets()
        # /metrics itself is exempt, so the keyless read works.
        auth = ServiceClient(service).metrics()["auth"]
        assert auth["denied"]["missing-api-key"] == 1
        assert auth["denied"]["invalid-api-key"] == 2
        assert auth["allow_anonymous"] is False
        assert auth["keys"] == 2


class TestAnonymousMode:
    def test_keyless_service_serves_keyless_clients(self):
        # The pre-auth contract: no keys configured, nothing denied.
        with ServiceClient(ConfigService()) as client:
            assert client.healthz()["status"] == "ok"
            result = client.protect(TAXI, param=0.01)
            assert result["n_users"] == 3
            assert client.service.auth.allow_anonymous is True

    def test_keyed_and_keyless_coexist_when_allowed(self):
        svc = ConfigService(api_keys=keyed_store(), allow_anonymous=True)
        try:
            anon = ServiceClient(svc)
            alice = ServiceClient(svc, api_key=ALICE_KEY)
            assert anon.datasets()["tenant"] == ANONYMOUS_TENANT
            assert alice.datasets()["tenant"] == "alice"
            snapshot = svc.auth.snapshot()
            assert snapshot["anonymous"] == 1
            assert snapshot["authenticated"] == 1
        finally:
            svc.close()

    def test_configuring_keys_denies_anonymous_by_default(self, service):
        assert service.auth.allow_anonymous is False


class TestExemptEndpoints:
    def test_healthz_and_metrics_stay_open(self, service):
        anon = ServiceClient(service)
        assert anon.healthz()["status"] == "ok"
        assert "service" in anon.metrics()
        with pytest.raises(ServiceClientError):
            anon.datasets()

    def test_authenticated_response_names_the_tenant(self, service):
        response = service.handle(
            "GET", "/datasets", headers={"X-API-Key": ALICE_KEY}
        )
        assert response.status == 200
        assert response.headers["X-Tenant"] == "alice"

    def test_header_lookup_is_case_insensitive(self, service):
        response = service.handle(
            "GET", "/datasets", headers={"x-api-key": ALICE_KEY}
        )
        assert response.status == 200


class TestKeyFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "keys.txt"
        path.write_text(
            "# provisioned 2026-08-07\n"
            "\n"
            f"{ALICE_KEY}:alice\n"
            f"{BOB_KEY}:bob\n"
        )
        store = ApiKeyStore.from_file(path)
        assert len(store) == 2
        assert store.lookup(ALICE_KEY) == ("ok", "alice")
        assert store.lookup(BOB_KEY) == ("ok", "bob")
        assert store.lookup("absent")[0] == "unknown"

    def test_bad_line_reports_path_and_number(self, tmp_path):
        path = tmp_path / "keys.txt"
        path.write_text("good-key:tenant\nno-colon-here\n")
        with pytest.raises(ValueError) as excinfo:
            ApiKeyStore.from_file(path)
        assert f"{path}:2" in str(excinfo.value)

    def test_cli_serve_missing_key_file_is_operator_error(self, capsys):
        rc = cli_main(["serve", "--api-keys", "/no/such/keyfile"])
        assert rc == 2
        assert "no such API-key file" in capsys.readouterr().err

    def test_cli_serve_burst_without_rate_is_operator_error(self, capsys):
        rc = cli_main(["serve", "--burst", "5"])
        assert rc == 2
        assert "--burst requires --rate-limit" in capsys.readouterr().err


class TestTenantIsolation:
    def test_scenarios_are_invisible_across_tenants(self, alice, bob):
        alice.register_dataset("mine", "taxi", {"users": 3, "seed": 1})
        assert "mine" in [
            s["name"] for s in alice.datasets()["scenarios"]
        ]
        assert "mine" not in [
            s["name"] for s in bob.datasets()["scenarios"]
        ]
        with pytest.raises(ServiceClientError) as excinfo:
            bob.sweep({"scenario": "mine"}, points=3, replications=1)
        assert excinfo.value.status == 404

    def test_same_name_means_each_tenants_own_spec(self, alice, bob):
        alice.register_dataset("shared-name", "taxi",
                               {"users": 2, "seed": 1})
        bob.register_dataset("shared-name", "taxi",
                             {"users": 5, "seed": 1})
        a = alice.protect({"scenario": "shared-name"}, param=0.01)
        b = bob.protect({"scenario": "shared-name"}, param=0.01)
        assert a["n_users"] == 2
        assert b["n_users"] == 5

    def test_replace_in_one_tenant_leaves_the_other_alone(self, alice, bob):
        alice.register_dataset("stable", "taxi", {"users": 2, "seed": 1})
        bob.register_dataset("stable", "taxi", {"users": 3, "seed": 1})
        bob.register_dataset("stable", "taxi", {"users": 6, "seed": 1},
                             replace=True)
        assert alice.protect(
            {"scenario": "stable"}, param=0.01
        )["n_users"] == 2

    def test_anonymous_registry_is_not_a_tenants(self):
        svc = ConfigService(api_keys=keyed_store(), allow_anonymous=True)
        try:
            anon = ServiceClient(svc)
            alice = ServiceClient(svc, api_key=ALICE_KEY)
            anon.register_dataset("public", "taxi", {"users": 2, "seed": 1})
            assert "public" not in [
                s["name"] for s in alice.datasets()["scenarios"]
            ]
        finally:
            svc.close()

    def test_response_cache_keys_are_disjoint(self, service, alice, bob):
        body_points = dict(points=3, replications=1)
        alice.sweep(TAXI, **body_points)
        bob.sweep(TAXI, **body_points)
        snapshot = service.response_cache.snapshot()
        # Identical bodies, different tenants: two entries, zero hits.
        assert snapshot == {"entries": 2, "hits": 0, "misses": 2,
                            "spill": False, "spill_hits": 0}
        alice.sweep(TAXI, **body_points)
        assert service.response_cache.snapshot()["hits"] == 1

    def test_tenant_count_in_metrics(self, alice, bob):
        alice.register_dataset("a", "taxi", {"users": 2, "seed": 1})
        bob.register_dataset("b", "taxi", {"users": 2, "seed": 1})
        assert alice.metrics()["registry"]["tenants"] == 2


class TestJobTenancy:
    def test_other_tenants_jobs_do_not_exist(self, alice, bob):
        submitted = alice.submit(
            "sweep", {"dataset": TAXI, "points": 3, "replications": 1}
        )
        job_id = submitted["job_id"]
        with pytest.raises(ServiceClientError) as excinfo:
            bob.status(job_id)
        assert excinfo.value.status == 404
        assert excinfo.value.code == "job-not-found"
        with pytest.raises(ServiceClientError) as excinfo:
            bob.cancel(job_id)
        assert excinfo.value.status == 404
        assert [j["job_id"] for j in bob.jobs()["jobs"]] == []
        final = alice.wait(job_id, timeout_s=120)
        assert final["status"] == "done"
        assert final["tenant"] == "alice"

    def test_job_listing_is_scoped(self, alice, bob):
        a_id = alice.submit(
            "sweep", {"dataset": TAXI, "points": 3, "replications": 1}
        )["job_id"]
        b_id = bob.submit(
            "sweep", {"dataset": TAXI, "points": 4, "replications": 1}
        )["job_id"]
        assert [j["job_id"] for j in alice.jobs()["jobs"]] == [a_id]
        assert [j["job_id"] for j in bob.jobs()["jobs"]] == [b_id]
        alice.wait(a_id, timeout_s=120)
        bob.wait(b_id, timeout_s=120)

    def test_job_result_lands_in_the_tenants_cache(self, service, alice):
        body = {"dataset": TAXI, "points": 3, "replications": 1}
        alice.wait(alice.submit("sweep", body)["job_id"], timeout_s=120)
        # The sync repeat replays the job's cached response.
        alice.sweep(TAXI, points=3, replications=1)
        assert service.response_cache.snapshot()["hits"] == 1
