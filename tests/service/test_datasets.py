"""The scenario-registry endpoints and ``{"scenario": ...}`` specs.

The PR's acceptance claims live here: a sweep over a registered
scenario returns results identical to the in-process path, repeats hit
the response cache, the jobs path takes scenario specs, and file-backed
scenarios can never serve stale data (they bypass the response cache
and re-key on file identity).
"""

import pytest

from repro.framework import Configurator, geo_ind_system
from repro.mobility import write_csv
from repro.scenarios import ScenarioRegistry
from repro.service import ConfigService, ServiceClient, ServiceClientError

TINY = {"users": 2, "seed": 5}


@pytest.fixture
def fresh_client():
    with ServiceClient(ConfigService()) as client:
        yield client


class TestListing:
    def test_builtins_listed_with_cache_stats(self, fresh_client):
        listing = fresh_client.datasets()
        names = [s["name"] for s in listing["scenarios"]]
        assert "taxi" in names and "taxi-small" in names
        assert not any(s["file_backed"] for s in listing["scenarios"])
        assert listing["cache"]["entries"] == 0

    def test_healthz_and_metrics_count_scenarios(self, fresh_client):
        n = len(fresh_client.datasets()["scenarios"])
        assert fresh_client.healthz()["scenarios"] == n
        registry = fresh_client.metrics()["registry"]
        assert registry["scenarios"] == n
        assert "scenario_cache" in registry


class TestRegistration:
    def test_register_without_params_uses_kind_defaults(self, fresh_client):
        result = fresh_client.register_dataset("defaults-only", "commuters")
        assert result["registered"]["params"] == {}

    def test_register_returns_201_payload(self, fresh_client):
        result = fresh_client.register_dataset(
            "tiny", "taxi", TINY, description="two cabs")
        assert result["registered"]["name"] == "tiny"
        assert result["registered"]["params"] == TINY
        names = [s["name"] for s in fresh_client.datasets()["scenarios"]]
        assert "tiny" in names

    def test_conflicting_respec_is_409_unless_replace(self, fresh_client):
        fresh_client.register_dataset("tiny", "taxi", TINY)
        with pytest.raises(ServiceClientError) as excinfo:
            fresh_client.register_dataset("tiny", "taxi", {"users": 3})
        assert excinfo.value.status == 409
        assert excinfo.value.code == "scenario-exists"
        # Identical re-registration is idempotent…
        fresh_client.register_dataset("tiny", "taxi", TINY)
        # …and replace=True redefines.
        fresh_client.register_dataset(
            "tiny", "taxi", {"users": 3}, replace=True)
        spec = [s for s in fresh_client.datasets()["scenarios"]
                if s["name"] == "tiny"][0]
        assert spec["params"] == {"users": 3}

    def test_invalid_kind_and_params_are_typed_400s(self, fresh_client):
        with pytest.raises(ServiceClientError) as excinfo:
            fresh_client.register_dataset("x", "parquet", {})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid-request"  # schema choices
        with pytest.raises(ServiceClientError) as excinfo:
            fresh_client.register_dataset("x", "taxi", {"bogus": 1})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid-scenario"

    def test_file_backed_registration_checks_the_path(
        self, fresh_client, tmp_path
    ):
        with pytest.raises(ServiceClientError) as excinfo:
            fresh_client.register_dataset(
                "disk", "csv", {"path": str(tmp_path / "absent.csv")})
        assert excinfo.value.status == 404
        assert excinfo.value.code == "dataset-not-found"


class TestScenarioSpecs:
    def test_sweep_matches_in_process_path(self, fresh_client):
        via_service = fresh_client.sweep(
            {"scenario": "taxi", **TINY}, points=3, replications=1)

        dataset = ScenarioRegistry().resolve("taxi", **TINY)
        configurator = Configurator(
            geo_ind_system(), dataset, n_points=3, n_replications=1)
        try:
            sweep = configurator.fit() and configurator.sweep
        except ValueError:
            sweep = configurator.runner.sweep(n_points=3)

        assert [p[sweep.param_name] for p in via_service["points"]] == \
            [point.params[sweep.param_name] for point in sweep.points]
        assert [p["privacy_mean"] for p in via_service["points"]] == \
            [point.privacy_mean for point in sweep.points]
        assert [p["utility_mean"] for p in via_service["points"]] == \
            [point.utility_mean for point in sweep.points]

    def test_repeat_hits_response_cache(self, fresh_client):
        first = fresh_client.sweep(
            {"scenario": "taxi", **TINY}, points=3, replications=1)
        second = fresh_client.sweep(
            {"scenario": "taxi", **TINY}, points=3, replications=1)
        assert second["points"] == first["points"]
        assert second["engine"]["executions_this_request"] == 0
        assert fresh_client.metrics()["response_cache"]["hits"] == 1

    def test_equivalent_spellings_share_one_cache_entry(self, fresh_client):
        fresh_client.register_dataset("tiny", "taxi", TINY)
        fresh_client.sweep({"scenario": "tiny"}, points=3, replications=1)
        fresh_client.sweep(
            {"scenario": "taxi", **TINY}, points=3, replications=1)
        metrics = fresh_client.metrics()
        assert metrics["response_cache"]["hits"] == 1
        assert metrics["registry"]["datasets"] == 1

    def test_unknown_scenario_is_typed_404(self, fresh_client):
        with pytest.raises(ServiceClientError) as excinfo:
            fresh_client.sweep({"scenario": "nope"}, points=3,
                               replications=1)
        assert excinfo.value.status == 404
        assert excinfo.value.code == "scenario-not-found"

    def test_bad_override_is_typed_400(self, fresh_client):
        with pytest.raises(ServiceClientError) as excinfo:
            fresh_client.sweep({"scenario": "taxi", "bogus": 1},
                               points=3, replications=1)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid-dataset"

    def test_protect_accepts_scenario_specs(self, fresh_client):
        result = fresh_client.protect(
            {"scenario": "taxi", **TINY}, param=0.01, seed=1)
        assert result["n_users"] == 2

    def test_jobs_path_accepts_scenario_specs(self, fresh_client):
        job = fresh_client.submit("sweep", {
            "dataset": {"scenario": "taxi", **TINY},
            "points": 3, "replications": 1,
        })
        final = fresh_client.wait(job["job_id"], timeout_s=120)
        assert final["status"] == "done"
        sync = fresh_client.sweep(
            {"scenario": "taxi", **TINY}, points=3, replications=1)
        assert sync["points"] == final["result"]["points"]
        # The job's result warmed the response cache for the sync path.
        assert fresh_client.metrics()["response_cache"]["hits"] >= 1

    def test_replace_invalidates_cached_responses(self, fresh_client):
        fresh_client.register_dataset("tiny", "taxi", TINY)
        first = fresh_client.sweep({"scenario": "tiny"}, points=3,
                                   replications=1)
        fresh_client.register_dataset(
            "tiny", "taxi", {"users": 3, "seed": 5}, replace=True)
        second = fresh_client.sweep({"scenario": "tiny"}, points=3,
                                    replications=1)
        # New data, new fingerprint: a replay here would be a stale lie.
        assert fresh_client.metrics()["response_cache"]["hits"] == 0
        assert second["points"] != first["points"]


class TestStateDatasetLRU:
    """The state's dataset registry evicts least-recently-*used*."""

    def test_recently_touched_dataset_survives_eviction(self):
        from repro.service import ServiceState

        state = ServiceState(max_datasets=2)
        spec = lambda seed: {"workload": "taxi", "users": 2, "seed": seed}
        _, a = state.dataset_for(spec(0))
        _, b = state.dataset_for(spec(1))
        # Touch A: B becomes the least recently used entry.
        assert state.dataset_for(spec(0))[1] is a
        state.dataset_for(spec(2))
        assert state.n_datasets == 2
        # A survived (same object, no re-resolution); B was evicted
        # (a fresh resolve returns a different object).
        assert state.dataset_for(spec(0))[1] is a
        assert state.dataset_for(spec(1))[1] is not b


class TestFileBackedScenarios:
    @pytest.fixture
    def csv_scenario(self, fresh_client, tmp_path):
        path = tmp_path / "d.csv"
        write_csv(ScenarioRegistry().resolve("taxi", **TINY), path)
        fresh_client.register_dataset("disk", "csv", {"path": str(path)})
        return path

    def test_resolves_like_the_synth_equivalent(
        self, fresh_client, csv_scenario
    ):
        from_disk = fresh_client.sweep({"scenario": "disk"}, points=3,
                                       replications=1)
        from_synth = fresh_client.sweep(
            {"scenario": "taxi", **TINY}, points=3, replications=1)
        assert from_disk["points"] == from_synth["points"]

    def test_path_override_works_cold_and_warm(
        self, fresh_client, csv_scenario, tmp_path
    ):
        # 'path' is the csv kind's parameter, so it is a legitimate
        # scenario override — it must not be mistaken for a competing
        # spec form on a cold registry (which would 400 cold and then
        # succeed warm, once the dataset LRU holds the entry).
        other = tmp_path / "other.csv"
        write_csv(ScenarioRegistry().resolve("taxi", users=3, seed=1),
                  other)
        spec = {"scenario": "disk", "path": str(other)}
        cold = fresh_client.sweep(spec, points=3, replications=1)
        warm = fresh_client.sweep(spec, points=3, replications=1)
        assert cold["points"] == warm["points"]

    def test_bypasses_the_response_cache(self, fresh_client, csv_scenario):
        fresh_client.sweep({"scenario": "disk"}, points=3, replications=1)
        repeat = fresh_client.sweep({"scenario": "disk"}, points=3,
                                    replications=1)
        # Not a response-cache replay — but the engine cache still
        # makes the repeat free.
        assert fresh_client.metrics()["response_cache"]["hits"] == 0
        assert repeat["engine"]["executions_this_request"] == 0
