"""The HTTP front-end: stdlib server + urllib client round trips."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import ConfigService, HttpServiceClient, ServiceClientError

TAXI = {"workload": "taxi", "users": 3, "seed": 1}


@pytest.fixture(scope="module")
def http_service():
    app = ConfigService()
    server = app.make_server("127.0.0.1", 0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}", app
    finally:
        server.shutdown()
        server.server_close()
        app.close()
        thread.join(timeout=5)


@pytest.fixture(scope="module")
def http_client(http_service):
    base_url, _ = http_service
    return HttpServiceClient(base_url)


class TestHttpRoundTrip:
    def test_healthz(self, http_client):
        assert http_client.healthz()["status"] == "ok"

    def test_sweep_and_warm_repeat(self, http_client):
        first = http_client.sweep(TAXI, points=4, replications=1)
        assert len(first["points"]) == 4
        http_client.sweep(TAXI, points=4, replications=1)
        metrics = http_client.metrics()
        assert metrics["engine"]["executions"] == \
            first["engine"]["executions"]
        assert metrics["response_cache"]["hits"] >= 1

    def test_typed_error_over_http(self, http_client):
        with pytest.raises(ServiceClientError) as excinfo:
            http_client.sweep({"path": "/no/such.csv"})
        assert excinfo.value.status == 404
        assert excinfo.value.code == "dataset-not-found"

    def test_response_headers(self, http_service):
        base_url, _ = http_service
        with urllib.request.urlopen(base_url + "/healthz") as response:
            assert response.headers["Content-Type"] == "application/json"
            assert response.headers["X-Request-Id"].startswith("req-")

    def test_query_string_ignored_for_routing(self, http_service):
        base_url, _ = http_service
        with urllib.request.urlopen(base_url + "/healthz?probe=1") as raw:
            assert json.loads(raw.read())["status"] == "ok"

    def test_malformed_json_is_typed_400(self, http_service):
        base_url, app = http_service
        before = app.metrics.snapshot()
        request = urllib.request.Request(
            base_url + "/sweep", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert excinfo.value.headers["X-Request-Id"].startswith("req-")
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert payload["error"]["code"] == "invalid-json"
        # The parse failure went through the pipeline: it is counted.
        after = app.metrics.snapshot()
        assert after["requests_total"] == before["requests_total"] + 1
        assert after["responses_by_status"].get("400", 0) == \
            before["responses_by_status"].get("400", 0) + 1

    def test_non_object_json_is_typed_400(self, http_service):
        base_url, _ = http_service
        request = urllib.request.Request(
            base_url + "/sweep", data=b"[1, 2, 3]",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_oversized_body_rejected_before_read(self, http_service):
        """A huge Content-Length is refused without buffering the body."""
        import http.client

        base_url, _ = http_service
        host, port = base_url[len("http://"):].split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            connection.putrequest("POST", "/sweep")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(10**12))
            connection.endheaders()
            # No body sent: the 413 must arrive anyway.
            response = connection.getresponse()
            assert response.status == 413
            assert response.headers["Connection"] == "close"
            payload = json.loads(response.read().decode("utf-8"))
            assert payload["error"]["code"] == "payload-too-large"
        finally:
            connection.close()

    def test_get_with_body_closes_connection(self, http_service):
        """An unread GET body must not desync keep-alive parsing."""
        import http.client

        base_url, _ = http_service
        host, port = base_url[len("http://"):].split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            connection.putrequest("GET", "/healthz")
            connection.putheader("Content-Length", "5")
            connection.endheaders()
            connection.send(b"hello")
            response = connection.getresponse()
            assert response.status == 200
            assert response.headers["Connection"] == "close"
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()

    def test_chunked_encoding_rejected_and_closed(self, http_service):
        import http.client

        base_url, _ = http_service
        host, port = base_url[len("http://"):].split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            connection.putrequest("POST", "/sweep")
            connection.putheader("Transfer-Encoding", "chunked")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 411
            assert response.headers["Connection"] == "close"
            payload = json.loads(response.read().decode("utf-8"))
            assert payload["error"]["code"] == "length-required"
        finally:
            connection.close()

    @pytest.mark.parametrize("bad_length", ["-1", "abc"])
    def test_bad_content_length_is_400_and_closes(self, http_service,
                                                  bad_length):
        import http.client

        base_url, _ = http_service
        host, port = base_url[len("http://"):].split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            connection.putrequest("POST", "/sweep")
            connection.putheader("Content-Length", bad_length)
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            assert response.headers["Connection"] == "close"
            payload = json.loads(response.read().decode("utf-8"))
            assert payload["error"]["code"] == "invalid-request"
        finally:
            connection.close()

    def test_unknown_path_404(self, http_service):
        base_url, _ = http_service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base_url + "/nope")
        assert excinfo.value.code == 404

    def test_concurrent_requests(self, http_client):
        """The threaded server + evaluation lock serve parallel clients."""
        results, errors = [], []

        def hit():
            try:
                results.append(
                    http_client.sweep(TAXI, points=4, replications=1)
                )
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=hit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(results) == 4
        assert all(r["points"] == results[0]["points"] for r in results)


class TestJobsOverHttp:
    """The async-job surface over real sockets."""

    def test_submit_poll_cancel_round_trip(self, http_client):
        submitted = http_client.submit("sweep", {
            "dataset": {"workload": "taxi", "users": 4, "seed": 21},
            "points": 4, "replications": 1,
        })
        assert submitted["status"] == "queued"
        final = http_client.wait(submitted["job_id"], timeout_s=120)
        assert final["status"] == "done"
        assert len(final["result"]["points"]) == 4
        # Terminal DELETE is a no-op answer, not an error.
        after = http_client.cancel(submitted["job_id"])
        assert after["status"] == "done"

    def test_submit_is_202_with_location_style_poll(self, http_service):
        base_url, _ = http_service
        request = urllib.request.Request(
            base_url + "/jobs",
            data=json.dumps({
                "endpoint": "sweep",
                "body": {
                    "dataset": {"workload": "taxi", "users": 3, "seed": 22},
                    "points": 4, "replications": 1,
                },
            }).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 202
            payload = json.loads(response.read().decode("utf-8"))
        assert payload["poll"] == f"/jobs/{payload['job_id']}"

    def test_unknown_job_404_over_http(self, http_client):
        with pytest.raises(ServiceClientError) as excinfo:
            http_client.status("job-missing-1")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "job-not-found"

    def test_jobs_listing_over_http(self, http_client):
        listing = http_client.jobs()
        assert "jobs" in listing and "workers" in listing
