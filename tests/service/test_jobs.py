"""The async job subsystem: lifecycle, progress, cancellation, limits.

Covers the PR's acceptance claims:

* happy path — submit returns 202-shaped payload immediately, the job
  reaches ``done``, and its result equals the sync endpoint's;
* progress is monotone and ends at completed == total;
* cancellation mid-sweep stops between engine chunks;
* a saturated worker pool turns ``POST /jobs`` into a typed 429;
* finished jobs expire after their TTL;
* client ``wait()`` raises :class:`TimeoutError` at its deadline;
* with one worker busy on a long sweep, ``/healthz``, ``/metrics``,
  ``GET /jobs/<id>`` and response-cache hits all answer in < 100 ms.
"""

import time
from dataclasses import replace

import pytest

from repro.framework import geo_ind_system
from repro.service import (
    ConfigService,
    JobManager,
    Response,
    ServiceClient,
    ServiceClientError,
    ServiceError,
)

TAXI = {"workload": "taxi", "users": 3, "seed": 1}


class _SlowMetric:
    """Wraps a metric with a per-evaluation delay (slow-sweep fixture)."""

    def __init__(self, inner, delay_s: float) -> None:
        self._inner = inner
        self._delay_s = delay_s
        self.kind = inner.kind

    def evaluate(self, dataset, protected):
        time.sleep(self._delay_s)
        return self._inner.evaluate(dataset, protected)


def slow_system_factory(delay_s: float = 0.05):
    def factory():
        base = geo_ind_system()
        return replace(
            base, privacy_metric=_SlowMetric(base.privacy_metric, delay_s)
        )

    return factory


@pytest.fixture
def client():
    with ServiceClient(ConfigService(workers=2)) as c:
        yield c


@pytest.fixture
def slow_client():
    """One worker over a system whose every evaluation takes ~50 ms."""
    service = ConfigService(
        workers=1, system_factory=slow_system_factory(0.05)
    )
    with ServiceClient(service) as c:
        yield c


class TestLifecycle:
    def test_submit_poll_result(self, client):
        body = {"dataset": TAXI, "points": 4, "replications": 1}
        submitted = client.submit("sweep", body)
        assert submitted["status"] == "queued"
        assert submitted["poll"] == f"/jobs/{submitted['job_id']}"

        final = client.wait(submitted["job_id"], timeout_s=120)
        assert final["status"] == "done"
        assert final["progress"]["completed"] == \
            final["progress"]["total"] == 4
        assert final["runtime_s"] >= 0

        sync = client.sweep(TAXI, points=4, replications=1)
        job_points = final["result"]["points"]
        assert [p["privacy_mean"] for p in job_points] == \
            [p["privacy_mean"] for p in sync["points"]]

    def test_submit_returns_before_the_work_finishes(self, slow_client):
        body = {"dataset": TAXI, "points": 6, "replications": 2}
        start = time.perf_counter()
        submitted = slow_client.submit("sweep", body)
        submit_latency = time.perf_counter() - start
        # 12 evaluations x 50 ms each are pending; the submit came back
        # long before they could have run.
        assert submit_latency < 0.3
        final = slow_client.wait(submitted["job_id"], timeout_s=120)
        assert final["status"] == "done"

    def test_configure_and_recommend_jobs(self, client):
        conf = client.wait(
            client.submit("configure", {
                "dataset": TAXI, "points": 4, "replications": 1,
            })["job_id"],
            timeout_s=120,
        )
        assert "model" in conf["result"]
        rec = client.wait(
            client.submit("recommend", {
                "dataset": TAXI, "points": 4, "replications": 1,
                "objectives": [
                    {"kind": "privacy", "op": "<=", "target": 0.5},
                    {"kind": "utility", "op": ">=", "target": 0.1},
                ],
            })["job_id"],
            timeout_s=120,
        )
        assert "recommendation" in rec["result"]
        # The configure job already fitted this resolution: the
        # recommend job reused the registry.
        assert rec["result"]["engine"]["executions_this_request"] == 0

    def test_job_respects_response_cache_both_ways(self, client):
        body = {"dataset": TAXI, "points": 4, "replications": 1}
        # Sync request warms the cache; the identical job replays it.
        client.sweep(TAXI, points=4, replications=1)
        final = client.wait(
            client.submit("sweep", body)["job_id"], timeout_s=120
        )
        assert final["from_response_cache"] is True
        assert final["progress"] == {"completed": 0, "total": 0}
        # And the job's entry serves sync repeats: no new executions.
        executions = client.metrics()["engine"]["executions"]
        client.sweep(TAXI, points=4, replications=1)
        assert client.metrics()["engine"]["executions"] == executions

    def test_failed_job_carries_typed_error(self, client):
        # 2 points cannot anchor the saturation-zone fit: the sync
        # endpoint answers 422, so the job fails with the same payload.
        final_id = client.submit("configure", {
            "dataset": {"workload": "taxi", "users": 2, "seed": 3},
            "points": 2, "replications": 1,
        })["job_id"]
        with pytest.raises(ServiceClientError) as excinfo:
            client.wait(final_id, timeout_s=120)
        assert excinfo.value.status == 422
        assert excinfo.value.code == "evaluation-failed"
        snapshot = client.status(final_id)
        assert snapshot["status"] == "failed"
        assert snapshot["error"]["code"] == "evaluation-failed"

    def test_listing_counts_jobs(self, client):
        client.wait(
            client.submit("sweep", {
                "dataset": TAXI, "points": 4, "replications": 1,
            })["job_id"],
            timeout_s=120,
        )
        listing = client.jobs()
        assert listing["workers"] == 2
        assert listing["by_status"].get("done", 0) >= 1
        assert all("result" not in job for job in listing["jobs"])


class TestValidation:
    def test_unknown_endpoint_rejected(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit("protect", {"dataset": TAXI})
        assert excinfo.value.status == 400

    def test_inner_body_validated_at_submit_time(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit("sweep", {"dataset": TAXI, "points": 1})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid-request"
        # Nothing was enqueued for the bad body.
        assert client.jobs()["tracked"] == 0

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.status("job-nope-1")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "job-not-found"

    def test_post_to_job_id_is_405(self, client):
        response = client.service.handle("POST", "/jobs/job-x-1", {})
        assert response.status == 405


class TestProgress:
    def test_progress_is_monotone(self, slow_client):
        submitted = slow_client.submit("sweep", {
            "dataset": TAXI, "points": 5, "replications": 1,
        })
        seen = []
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            snapshot = slow_client.status(submitted["job_id"])
            seen.append((snapshot["progress"]["completed"],
                         snapshot["progress"]["total"]))
            if snapshot["status"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.01)
        assert seen[-1] == (5, 5)
        completions = [c for c, _ in seen]
        assert completions == sorted(completions)
        assert all(c <= t for c, t in seen if t)
        # The poll loop genuinely observed intermediate states.
        assert len(set(completions)) > 1


class TestCancellation:
    def test_cancel_mid_sweep(self, slow_client):
        submitted = slow_client.submit("sweep", {
            "dataset": TAXI, "points": 10, "replications": 2,
        })
        # Let it start, then cancel while evaluations are running.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if slow_client.status(submitted["job_id"])["status"] == "running":
                break
            time.sleep(0.005)
        response = slow_client.cancel(submitted["job_id"])
        assert response["cancel_requested"] is True
        final = slow_client.wait(submitted["job_id"], timeout_s=120)
        assert final["status"] == "cancelled"
        assert "result" not in final
        assert final["progress"]["completed"] < \
            final["progress"]["total"]

    def test_cancel_queued_job_is_immediate(self, slow_client):
        running = slow_client.submit("sweep", {
            "dataset": TAXI, "points": 10, "replications": 2,
        })
        queued = slow_client.submit("sweep", {
            "dataset": {"workload": "taxi", "users": 4, "seed": 9},
            "points": 10, "replications": 2,
        })
        cancelled = slow_client.cancel(queued["job_id"])
        assert cancelled["status"] == "cancelled"
        slow_client.cancel(running["job_id"])
        slow_client.wait(running["job_id"], timeout_s=120)

    def test_cancel_of_terminal_job_is_a_noop(self, client):
        job_id = client.submit("sweep", {
            "dataset": TAXI, "points": 4, "replications": 1,
        })["job_id"]
        final = client.wait(job_id, timeout_s=120)
        assert final["status"] == "done"
        after = client.cancel(job_id)
        assert after["status"] == "done"
        assert "result" in client.status(job_id)


class TestSaturation:
    def test_full_queue_is_typed_429(self, slow_client):
        manager = slow_client.service.jobs
        manager.max_queued = 1
        body = {"dataset": TAXI, "points": 10, "replications": 2}
        running = slow_client.submit("sweep", body)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if slow_client.status(running["job_id"])["status"] == "running":
                break
            time.sleep(0.005)
        queued = slow_client.submit("sweep", {
            "dataset": {"workload": "taxi", "users": 4, "seed": 8},
            **{k: v for k, v in body.items() if k != "dataset"},
        })
        with pytest.raises(ServiceClientError) as excinfo:
            slow_client.submit("sweep", {
                "dataset": {"workload": "taxi", "users": 5, "seed": 8},
                **{k: v for k, v in body.items() if k != "dataset"},
            })
        assert excinfo.value.status == 429
        assert excinfo.value.code == "jobs-saturated"
        assert excinfo.value.details["workers"] == 1
        for job in (queued, running):
            slow_client.cancel(job["job_id"])
            slow_client.wait(job["job_id"], timeout_s=120)


class TestTTL:
    def test_finished_jobs_expire(self):
        clock = {"now": 0.0}
        manager = JobManager(
            execute=lambda job: Response(status=200, body={"ok": True}),
            workers=1,
            ttl_s=10.0,
            clock=lambda: clock["now"],
        )
        try:
            job = manager.submit("sweep", {})
            assert job.done_event.wait(timeout=30)
            assert manager.get(job.id).status == "done"
            clock["now"] = 9.9
            assert manager.get(job.id).status == "done"
            clock["now"] = 10.1
            with pytest.raises(ServiceError) as excinfo:
                manager.get(job.id)
            assert excinfo.value.code == "job-not-found"
            assert manager.stats()["tracked"] == 0
        finally:
            manager.close(grace_s=5)

    def test_ttl_over_http_surface(self):
        # The TTL must dwarf wait()'s poll gap, or the job can expire
        # between the finishing poll and the next one.
        service = ConfigService(workers=1, job_ttl_s=1.5)
        with ServiceClient(service) as client:
            job_id = client.submit("sweep", {
                "dataset": TAXI, "points": 4, "replications": 1,
            })["job_id"]
            client.wait(job_id, timeout_s=120, poll_s=0.02, max_poll_s=0.1)
            time.sleep(1.7)
            with pytest.raises(ServiceClientError) as excinfo:
                client.status(job_id)
            assert excinfo.value.status == 404


class TestWaitTimeout:
    def test_wait_raises_timeout_and_job_keeps_running(self, slow_client):
        submitted = slow_client.submit("sweep", {
            "dataset": TAXI, "points": 10, "replications": 2,
        })
        with pytest.raises(TimeoutError):
            slow_client.wait(submitted["job_id"], timeout_s=0.1)
        # The deadline bounded the *wait*, not the job.
        assert slow_client.status(submitted["job_id"])["status"] in (
            "queued", "running"
        )
        slow_client.cancel(submitted["job_id"])
        final = slow_client.wait(submitted["job_id"], timeout_s=120)
        assert final["status"] == "cancelled"

    def test_wait_rejects_nonpositive_timeout(self, client):
        with pytest.raises(ValueError):
            client.wait("job-x-1", timeout_s=0)


class TestResponsivenessUnderLoad:
    def test_introspection_fast_while_worker_busy(self, slow_client):
        """The acceptance criterion: with the single worker mid-sweep,
        health, metrics, job polls and response-cache hits all answer
        in well under 100 ms."""
        # Warm one response-cache entry before occupying the worker.
        slow_client.sweep(TAXI, points=2, replications=1)
        submitted = slow_client.submit("sweep", {
            "dataset": {"workload": "taxi", "users": 4, "seed": 6},
            "points": 10, "replications": 2,
        })
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if slow_client.status(submitted["job_id"])["status"] == "running":
                break
            time.sleep(0.005)

        probes = {
            "healthz": slow_client.healthz,
            "metrics": slow_client.metrics,
            "job_status": lambda: slow_client.status(submitted["job_id"]),
            "cache_hit": lambda: slow_client.sweep(
                TAXI, points=2, replications=1
            ),
        }
        worst = {}
        for name, probe in probes.items():
            start = time.perf_counter()
            probe()
            worst[name] = (time.perf_counter() - start) * 1000.0
        assert slow_client.status(submitted["job_id"])["status"] == \
            "running", "the long sweep must still be running"
        slow_client.cancel(submitted["job_id"])
        slow_client.wait(submitted["job_id"], timeout_s=120)
        laggards = {k: v for k, v in worst.items() if v >= 100.0}
        assert not laggards, f"probes beyond 100 ms: {laggards}"


class TestShutdown:
    def test_close_cancels_queued_and_refuses_new(self):
        service = ConfigService(
            workers=1, system_factory=slow_system_factory(0.05)
        )
        client = ServiceClient(service)
        running = client.submit("sweep", {
            "dataset": TAXI, "points": 10, "replications": 2,
        })
        queued = client.submit("sweep", {
            "dataset": {"workload": "taxi", "users": 4, "seed": 2},
            "points": 10, "replications": 2,
        })
        service.jobs.close(grace_s=0.2)
        assert service.jobs.get(queued["job_id"]).status == "cancelled"
        assert service.jobs.get(running["job_id"]).status in (
            "cancelled", "done"
        )
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit("sweep", {
                "dataset": TAXI, "points": 4, "replications": 1,
            })
        assert excinfo.value.status == 503
        service.close()

    def test_close_is_idempotent(self):
        service = ConfigService(workers=1)
        service.close()
        service.close()
