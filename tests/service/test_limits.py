"""Rate limits, tenant job quotas, gzip and cache-tenancy safety.

The adversarial half of the hardening PR:

* token-bucket boundary — the Nth request in a burst passes, the N+1th
  is a typed 429 with ``Retry-After``, and an (injected-clock) refill
  admits exactly one more;
* per-tenant accounting is exact under 8 concurrent threads — no lost
  or invented tokens — while ``/healthz`` and ``/metrics`` stay
  unauthenticated and fast throughout;
* one tenant at its job quota gets a typed 429 while another tenant
  still submits;
* gzip is negotiated per request, skips small bodies, and round-trips
  bit-exact over HTTP;
* the response cache never stores non-2xx responses and never leaks a
  tenant's entry (a 429 for tenant A is not replayed to tenant B).
"""

import gzip
import json
import threading
import time
import urllib.request
from dataclasses import replace

import pytest

from repro.framework import geo_ind_system
from repro.service import (
    ApiKeyStore,
    ConfigService,
    JobManager,
    Response,
    ServiceClient,
    ServiceClientError,
    ServiceError,
)

TAXI = {"workload": "taxi", "users": 3, "seed": 1}

ALICE_KEY = "alice-secret-key"
BOB_KEY = "bob-secret-key"


def keyed_store() -> ApiKeyStore:
    store = ApiKeyStore()
    store.add(ALICE_KEY, "alice")
    store.add(BOB_KEY, "bob")
    return store


class FakeClock:
    """A settable monotonic clock: refills happen when the test says."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class _SlowMetric:
    """Wraps a metric with a per-evaluation delay (slow-sweep fixture)."""

    def __init__(self, inner, delay_s: float) -> None:
        self._inner = inner
        self._delay_s = delay_s
        self.kind = inner.kind

    def evaluate(self, dataset, protected):
        time.sleep(self._delay_s)
        return self._inner.evaluate(dataset, protected)


def slow_system_factory(delay_s: float = 0.05):
    def factory():
        base = geo_ind_system()
        return replace(
            base, privacy_metric=_SlowMetric(base.privacy_metric, delay_s)
        )

    return factory


# ----------------------------------------------------------------------
# Token bucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    @pytest.fixture
    def limited(self):
        """rate 1 req/s, burst 3, clock frozen at t=0."""
        clock = FakeClock()
        svc = ConfigService(
            rate_limit_rps=1.0, rate_limit_burst=3, rate_limit_clock=clock
        )
        yield svc, clock
        svc.close()

    def test_burst_boundary_then_429(self, limited):
        svc, _ = limited
        for _ in range(3):
            assert svc.handle("GET", "/datasets").status == 200
        denied = svc.handle("GET", "/datasets")
        assert denied.status == 429
        assert denied.body["error"]["code"] == "rate-limited"
        details = denied.body["error"]["details"]
        assert details["tenant"] == "anonymous"
        assert details["retry_after_s"] == pytest.approx(1.0)
        assert denied.headers["Retry-After"] == "1"

    def test_refill_admits_exactly_one_more(self, limited):
        svc, clock = limited
        for _ in range(3):
            assert svc.handle("GET", "/datasets").status == 200
        assert svc.handle("GET", "/datasets").status == 429
        clock.advance(1.0)
        assert svc.handle("GET", "/datasets").status == 200
        assert svc.handle("GET", "/datasets").status == 429

    def test_retry_after_rounds_up(self):
        clock = FakeClock()
        svc = ConfigService(
            rate_limit_rps=0.25, rate_limit_burst=1, rate_limit_clock=clock
        )
        try:
            assert svc.handle("GET", "/datasets").status == 200
            denied = svc.handle("GET", "/datasets")
            assert denied.status == 429
            # One token takes 4 s at 0.25 req/s; the header is whole
            # seconds, rounded up.
            assert denied.headers["Retry-After"] == "4"
        finally:
            svc.close()

    def test_buckets_are_per_tenant(self):
        clock = FakeClock()
        svc = ConfigService(
            api_keys=keyed_store(),
            rate_limit_rps=1.0, rate_limit_burst=2, rate_limit_clock=clock,
        )
        try:
            alice = ServiceClient(svc, api_key=ALICE_KEY)
            bob = ServiceClient(svc, api_key=BOB_KEY)
            alice.datasets()
            alice.datasets()
            with pytest.raises(ServiceClientError) as excinfo:
                alice.datasets()
            assert excinfo.value.code == "rate-limited"
            assert excinfo.value.details["tenant"] == "alice"
            # Alice's empty bucket is not Bob's problem.
            bob.datasets()
            bob.datasets()
        finally:
            svc.close()

    def test_exempt_endpoints_are_never_limited(self, limited):
        svc, _ = limited
        for _ in range(3):
            svc.handle("GET", "/datasets")
        assert svc.handle("GET", "/datasets").status == 429
        for _ in range(10):
            assert svc.handle("GET", "/healthz").status == 200
            assert svc.handle("GET", "/metrics").status == 200

    def test_disabled_by_default(self):
        with ServiceClient(ConfigService()) as client:
            for _ in range(50):
                client.datasets()
            snapshot = client.service.rate_limit.snapshot()
            assert snapshot["rate_per_s"] is None
            assert snapshot["rejected"] == 0

    def test_counters_in_metrics(self, limited):
        svc, _ = limited
        for _ in range(5):
            svc.handle("GET", "/datasets")
        rate = svc.handle("GET", "/metrics").body["rate_limit"]
        assert rate["allowed"] == 3
        assert rate["rejected"] == 2
        assert rate["burst"] == 3.0


# ----------------------------------------------------------------------
# Per-tenant job quotas
# ----------------------------------------------------------------------
class TestJobQuota:
    def test_quota_blocks_only_the_saturated_tenant(self):
        release = threading.Event()

        def execute(job):
            release.wait(timeout=30)
            return Response(status=200, body={"ok": True})

        manager = JobManager(
            execute=execute, workers=2, max_jobs_per_tenant=2
        )
        try:
            held = [
                manager.submit("sweep", {}, tenant="alice")
                for _ in range(2)
            ]
            with pytest.raises(ServiceError) as excinfo:
                manager.submit("sweep", {}, tenant="alice")
            assert excinfo.value.status == 429
            assert excinfo.value.code == "tenant-quota-exceeded"
            assert excinfo.value.details["tenant"] == "alice"
            assert excinfo.value.details["max_jobs_per_tenant"] == 2
            # Bob's quota is his own.
            extra = manager.submit("sweep", {}, tenant="bob")
            release.set()
            for job in held + [extra]:
                assert job.done_event.wait(timeout=30)
            # Finished jobs stop counting: Alice can submit again.
            again = manager.submit("sweep", {}, tenant="alice")
            assert again.done_event.wait(timeout=30)
        finally:
            release.set()
            manager.close(grace_s=5)

    def test_quota_through_the_service(self):
        svc = ConfigService(
            api_keys=keyed_store(),
            workers=1,
            max_jobs_per_tenant=1,
            system_factory=slow_system_factory(0.05),
        )
        try:
            alice = ServiceClient(svc, api_key=ALICE_KEY)
            bob = ServiceClient(svc, api_key=BOB_KEY)
            body = {"dataset": TAXI, "points": 6, "replications": 2}
            first = alice.submit("sweep", body)
            with pytest.raises(ServiceClientError) as excinfo:
                alice.submit("sweep", body)
            assert excinfo.value.status == 429
            assert excinfo.value.code == "tenant-quota-exceeded"
            # Alice saturating her quota does not refuse Bob.
            second = bob.submit("sweep", body)
            alice.wait(first["job_id"], timeout_s=120)
            bob.wait(second["job_id"], timeout_s=120)
            # With her job finished, Alice is back under quota.
            third = alice.submit("sweep", body)
            alice.wait(third["job_id"], timeout_s=120)
        finally:
            svc.close()

    def test_quota_is_reported_in_stats(self):
        svc = ConfigService(max_jobs_per_tenant=4)
        try:
            assert svc.jobs.stats()["max_jobs_per_tenant"] == 4
        finally:
            svc.close()


# ----------------------------------------------------------------------
# Concurrency: exact accounting + responsive probes
# ----------------------------------------------------------------------
class TestConcurrentLimiting:
    def test_eight_threads_two_tenants_exact_counts(self):
        # Refill is negligible (0.001 tokens/s) so the budget is the
        # burst, full stop: exactly 20 admits per tenant, no matter how
        # the 8 threads interleave.
        svc = ConfigService(
            api_keys=keyed_store(),
            rate_limit_rps=0.001, rate_limit_burst=20,
        )
        try:
            counts = {"alice": {"ok": 0, "limited": 0},
                      "bob": {"ok": 0, "limited": 0}}
            counts_lock = threading.Lock()
            start = threading.Barrier(9)

            def hammer(tenant: str, key: str) -> None:
                start.wait(timeout=10)
                for _ in range(10):
                    response = svc.handle(
                        "GET", "/datasets", headers={"X-API-Key": key}
                    )
                    with counts_lock:
                        if response.status == 200:
                            counts[tenant]["ok"] += 1
                        else:
                            assert response.status == 429
                            counts[tenant]["limited"] += 1

            threads = [
                threading.Thread(target=hammer, args=(tenant, key))
                for tenant, key in (("alice", ALICE_KEY),
                                    ("bob", BOB_KEY)) * 4
            ]
            for thread in threads:
                thread.start()
            start.wait(timeout=10)

            # While the hammer runs, the unauthenticated operational
            # endpoints keep answering, fast.
            probe_worst = 0.0
            for _ in range(20):
                for path in ("/healthz", "/metrics"):
                    began = time.perf_counter()
                    assert svc.handle("GET", path).status == 200
                    probe_worst = max(
                        probe_worst, time.perf_counter() - began
                    )
            for thread in threads:
                thread.join(timeout=30)
            assert probe_worst < 0.1

            assert counts["alice"] == {"ok": 20, "limited": 20}
            assert counts["bob"] == {"ok": 20, "limited": 20}
            snapshot = svc.rate_limit.snapshot()
            assert snapshot["allowed"] == 40
            assert snapshot["rejected"] == 40
            assert snapshot["tenants"] == 2
        finally:
            svc.close()


# ----------------------------------------------------------------------
# gzip negotiation and round trips
# ----------------------------------------------------------------------
BIG_TAXI = {"workload": "taxi", "users": 6, "seed": 2}


class TestGzip:
    @pytest.fixture
    def service(self):
        svc = ConfigService()
        yield svc
        svc.close()

    def _protect(self, svc: ConfigService, **headers) -> Response:
        return svc.handle("POST", "/protect", {"dataset": BIG_TAXI},
                          headers=headers)

    def test_large_response_compresses(self, service):
        response = self._protect(service, **{"Accept-Encoding": "gzip"})
        assert response.status == 200
        assert response.headers["Content-Encoding"] == "gzip"
        assert response.headers["Vary"] == "Accept-Encoding"
        plain = json.dumps(response.body).encode("utf-8")
        assert len(response.encoded_body) < len(plain)
        assert json.loads(gzip.decompress(response.encoded_body)) == \
            response.body

    def test_no_accept_encoding_means_identity(self, service):
        response = self._protect(service)
        assert response.encoded_body is None
        assert "Content-Encoding" not in response.headers

    @pytest.mark.parametrize("accept", [
        "identity", "br", "gzip;q=0", "gzip;q=0.0"
    ])
    def test_refusals_are_honoured(self, service, accept):
        response = self._protect(service, **{"Accept-Encoding": accept})
        assert response.encoded_body is None

    @pytest.mark.parametrize("accept", [
        "gzip", "GZIP", "x-gzip", "*", "br, gzip;q=0.5", "gzip, deflate"
    ])
    def test_acceptances_are_honoured(self, service, accept):
        response = self._protect(service, **{"Accept-Encoding": accept})
        assert response.headers.get("Content-Encoding") == "gzip"

    def test_small_responses_ship_plain(self, service):
        response = service.handle(
            "GET", "/healthz", headers={"Accept-Encoding": "gzip"}
        )
        assert response.status == 200
        assert response.encoded_body is None

    def test_compression_counters(self, service):
        self._protect(service, **{"Accept-Encoding": "gzip"})
        snapshot = service.compression.snapshot()
        assert snapshot["responses_compressed"] == 1
        assert snapshot["bytes_saved"] > 0
        assert snapshot["bytes_out"] < snapshot["bytes_in"]


class TestGzipOverHttp:
    @pytest.fixture
    def http_service(self):
        app = ConfigService()
        server = app.make_server("127.0.0.1", 0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield f"http://{host}:{port}"
        finally:
            server.shutdown()
            server.server_close()
            app.close()
            thread.join(timeout=5)

    def _raw_protect(self, base_url: str, accept_gzip: bool):
        headers = {"Content-Type": "application/json"}
        if accept_gzip:
            headers["Accept-Encoding"] = "gzip"
        request = urllib.request.Request(
            base_url + "/protect",
            data=json.dumps({"dataset": BIG_TAXI}).encode("utf-8"),
            headers=headers,
        )
        with urllib.request.urlopen(request, timeout=30) as raw:
            return raw.read(), raw.headers

    def test_round_trip_is_bit_exact(self, http_service):
        plain_bytes, plain_headers = self._raw_protect(
            http_service, accept_gzip=False
        )
        gz_bytes, gz_headers = self._raw_protect(
            http_service, accept_gzip=True
        )
        assert plain_headers.get("Content-Encoding") is None
        assert gz_headers["Content-Encoding"] == "gzip"
        assert int(gz_headers["Content-Length"]) == len(gz_bytes)
        assert len(gz_bytes) < len(plain_bytes)
        assert gzip.decompress(gz_bytes) == plain_bytes

    def test_http_client_inflates_transparently(self, http_service):
        from repro.service import HttpServiceClient

        client = HttpServiceClient(http_service)
        result = client.protect(BIG_TAXI)
        assert len(result["records"]) == result["n_records"]

    def test_typed_errors_survive_the_gzip_client(self, http_service):
        from repro.service import HttpServiceClient

        client = HttpServiceClient(http_service)
        with pytest.raises(ServiceClientError) as excinfo:
            client.sweep({"scenario": "no-such-scenario"})
        assert excinfo.value.status == 404
        assert excinfo.value.code == "scenario-not-found"


# ----------------------------------------------------------------------
# Response-cache safety under tenancy and denials
# ----------------------------------------------------------------------
class TestCacheSafety:
    def test_a_429_for_one_tenant_is_not_replayed_to_another(self):
        svc = ConfigService(
            api_keys=keyed_store(),
            rate_limit_rps=0.001, rate_limit_burst=1,
        )
        try:
            alice = ServiceClient(svc, api_key=ALICE_KEY)
            bob = ServiceClient(svc, api_key=BOB_KEY)
            first = alice.sweep(TAXI, points=3, replications=1)
            assert len(first["points"]) == 3
            with pytest.raises(ServiceClientError) as excinfo:
                alice.sweep(TAXI, points=3, replications=1)
            assert excinfo.value.code == "rate-limited"
            # Bob sends the byte-identical body and gets a fresh 200 —
            # neither Alice's 429 nor her cached result.
            second = bob.sweep(TAXI, points=3, replications=1)
            assert len(second["points"]) == 3
            snapshot = svc.response_cache.snapshot()
            assert snapshot["hits"] == 0
            assert snapshot["entries"] == 2
        finally:
            svc.close()

    def test_non_2xx_responses_are_never_stored(self):
        with ServiceClient(ConfigService()) as client:
            for _ in range(2):
                with pytest.raises(ServiceClientError) as excinfo:
                    client.sweep({"scenario": "missing"},
                                 points=3, replications=1)
                assert excinfo.value.status == 404
            snapshot = client.service.response_cache.snapshot()
            assert snapshot["entries"] == 0
            assert snapshot["hits"] == 0
