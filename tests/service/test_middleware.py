"""Unit tests of the middleware pipeline: ordering, short-circuits,
validation, and the response cache."""

import pytest

from repro.service import (
    ErrorBoundaryMiddleware,
    Field,
    MetricsMiddleware,
    Middleware,
    MiddlewarePipeline,
    Request,
    RequestIdMiddleware,
    Response,
    ResponseCacheMiddleware,
    ServiceError,
    ValidationMiddleware,
    canonical_body_key,
    validate_body,
)


class Probe(Middleware):
    """Records the enter/exit order of the onion."""

    def __init__(self, label, trace):
        self.name = label
        self.label = label
        self.trace = trace

    def handle(self, request, call_next):
        self.trace.append(f"{self.label}:in")
        response = call_next(request)
        self.trace.append(f"{self.label}:out")
        return response


class ShortCircuit(Middleware):
    name = "short_circuit"

    def handle(self, request, call_next):
        return Response(status=418, body={"short": True})


def ok_handler(request):
    return Response(status=200, body={"ok": True})


class TestPipelineOrdering:
    def test_first_middleware_is_outermost(self):
        trace = []
        pipeline = MiddlewarePipeline(
            [Probe("a", trace), Probe("b", trace), Probe("c", trace)]
        )
        response = pipeline.wrap(
            lambda request: (trace.append("handler"), ok_handler(request))[1]
        )(Request("GET", "/x"))
        assert response.status == 200
        assert trace == [
            "a:in", "b:in", "c:in", "handler", "c:out", "b:out", "a:out",
        ]
        assert pipeline.names == ["a", "b", "c"]

    def test_short_circuit_skips_inner_layers(self):
        trace = []
        pipeline = MiddlewarePipeline(
            [Probe("outer", trace), ShortCircuit(), Probe("inner", trace)]
        )
        called = []
        response = pipeline.wrap(lambda r: called.append(r) or ok_handler(r))(
            Request("GET", "/x")
        )
        assert response.status == 418
        assert called == []
        # The outer layer still sees the short-circuited response.
        assert trace == ["outer:in", "outer:out"]

    def test_duplicate_names_rejected(self):
        trace = []
        with pytest.raises(ValueError, match="duplicate"):
            MiddlewarePipeline([Probe("same", trace), Probe("same", trace)])

    def test_empty_pipeline_is_identity(self):
        response = MiddlewarePipeline()(Request("GET", "/x"), ok_handler)
        assert response.body == {"ok": True}


class TestRequestId:
    def test_assigns_unique_ids_and_header(self):
        middleware = RequestIdMiddleware()
        pipeline = MiddlewarePipeline([middleware])
        seen = []
        handler = lambda r: seen.append(r.context["request_id"]) or ok_handler(r)
        r1 = pipeline(Request("GET", "/x"), handler)
        r2 = pipeline(Request("GET", "/x"), handler)
        assert seen[0] != seen[1]
        assert r1.headers["X-Request-Id"] == seen[0]
        assert r2.headers["X-Request-Id"] == seen[1]


class TestMetrics:
    def test_counts_by_endpoint_and_status(self):
        metrics = MetricsMiddleware()
        pipeline = MiddlewarePipeline([metrics])
        pipeline(Request("GET", "/a"), ok_handler)
        pipeline(Request("GET", "/a"), ok_handler)
        pipeline(Request("POST", "/b"),
                 lambda r: Response(status=404, body={}))
        snap = metrics.snapshot()
        assert snap["requests_total"] == 3
        assert snap["requests_by_endpoint"] == {"GET /a": 2, "POST /b": 1}
        assert snap["responses_by_status"] == {"200": 2, "404": 1}
        assert set(snap["wall_clock_s_by_endpoint"]) == {"GET /a", "POST /b"}

    def test_counts_response_cache_hits(self):
        metrics = MetricsMiddleware()
        cache = ResponseCacheMiddleware(["GET /a"])
        pipeline = MiddlewarePipeline([metrics, cache])
        pipeline(Request("GET", "/a"), ok_handler)
        pipeline(Request("GET", "/a"), ok_handler)
        assert metrics.snapshot()["response_cache_hits"] == 1


class TestErrorBoundary:
    def test_service_error_becomes_typed_response(self):
        pipeline = MiddlewarePipeline([ErrorBoundaryMiddleware()])

        def handler(request):
            raise ServiceError(404, "not-found", "nope", details=[1, 2])

        response = pipeline(Request("GET", "/x"), handler)
        assert response.status == 404
        assert response.body["error"]["code"] == "not-found"
        assert response.body["error"]["details"] == [1, 2]

    def test_unexpected_exception_becomes_opaque_500(self):
        pipeline = MiddlewarePipeline([ErrorBoundaryMiddleware()])

        def handler(request):
            raise RuntimeError("secret internals")

        response = pipeline(Request("GET", "/x"), handler)
        assert response.status == 500
        assert response.body["error"]["code"] == "internal-error"
        assert "secret" not in str(response.body)

    def test_error_carries_request_id(self):
        pipeline = MiddlewarePipeline(
            [RequestIdMiddleware(), ErrorBoundaryMiddleware()]
        )

        def handler(request):
            raise ServiceError(400, "bad", "x")

        response = pipeline(Request("GET", "/x"), handler)
        assert response.body["error"]["request_id"] == \
            response.headers["X-Request-Id"]


class TestValidation:
    SCHEMA = {
        "dataset": Field(type=dict, required=True),
        "points": Field(type=int, default=10, low=2, high=200),
        "mode": Field(type=str, default="fast", choices=("fast", "slow")),
    }

    def test_defaults_filled_in(self):
        body = validate_body({"dataset": {}}, self.SCHEMA, "POST /x")
        assert body == {"dataset": {}, "points": 10, "mode": "fast"}

    def test_all_problems_reported_together(self):
        with pytest.raises(ServiceError) as excinfo:
            validate_body(
                {"points": 1, "mode": "warp", "bogus": 1}, self.SCHEMA,
                "POST /x",
            )
        details = excinfo.value.details
        assert excinfo.value.status == 400
        assert any("unknown fields" in p for p in details)
        assert any("points" in p for p in details)
        assert any("mode" in p for p in details)
        assert any("dataset" in p for p in details)

    def test_int_accepted_for_float_field(self):
        schema = {"param": Field(type=float, required=True)}
        body = validate_body({"param": 1}, schema, "POST /x")
        assert body["param"] == 1.0 and isinstance(body["param"], float)

    def test_bool_is_not_a_number(self):
        for declared in (float, int):
            schema = {"param": Field(type=declared, required=True)}
            with pytest.raises(ServiceError):
                validate_body({"param": True}, schema, "POST /x")

    def test_non_object_body_rejected(self):
        with pytest.raises(ServiceError):
            validate_body([1, 2], self.SCHEMA, "POST /x")  # type: ignore

    def test_middleware_replaces_body_with_normalised(self):
        middleware = ValidationMiddleware({"POST /x": self.SCHEMA})
        pipeline = MiddlewarePipeline([middleware])
        seen = {}
        handler = lambda r: seen.update(r.body) or ok_handler(r)
        pipeline(Request("POST", "/x", body={"dataset": {"a": 1}}), handler)
        assert seen["points"] == 10
        # Endpoints without a schema pass through untouched.
        request = Request("POST", "/other", body={"anything": 1})
        pipeline(request, ok_handler)
        assert request.body == {"anything": 1}


class TestResponseCache:
    def test_only_cacheable_endpoints_cached(self):
        cache = ResponseCacheMiddleware(["POST /a"])
        pipeline = MiddlewarePipeline([cache])
        calls = []
        handler = lambda r: calls.append(1) or ok_handler(r)
        pipeline(Request("POST", "/a", body={"x": 1}), handler)
        pipeline(Request("POST", "/a", body={"x": 1}), handler)
        pipeline(Request("POST", "/b", body={"x": 1}), handler)
        pipeline(Request("POST", "/b", body={"x": 1}), handler)
        assert len(calls) == 3  # /a answered once from cache
        assert cache.snapshot() == {"entries": 1, "hits": 1, "misses": 1,
                                    "spill": False, "spill_hits": 0}

    def test_key_is_order_insensitive(self):
        assert canonical_body_key("POST /a", {"x": 1, "y": 2}) == \
            canonical_body_key("POST /a", {"y": 2, "x": 1})
        assert canonical_body_key("POST /a", {"x": 1}) != \
            canonical_body_key("POST /b", {"x": 1})

    def test_hit_marks_context_and_header(self):
        cache = ResponseCacheMiddleware(["POST /a"])
        pipeline = MiddlewarePipeline([cache])
        miss = pipeline(Request("POST", "/a", body={}), ok_handler)
        request = Request("POST", "/a", body={})
        hit = pipeline(request, ok_handler)
        assert miss.headers["X-Response-Cache"] == "miss"
        assert hit.headers["X-Response-Cache"] == "hit"
        assert request.context["response_cache_hit"] is True
        assert hit.body == miss.body

    def test_errors_not_cached(self):
        cache = ResponseCacheMiddleware(["POST /a"])
        pipeline = MiddlewarePipeline([cache])
        statuses = iter([500, 200])
        handler = lambda r: Response(status=next(statuses), body={})
        assert pipeline(Request("POST", "/a", body={}), handler).status == 500
        assert pipeline(Request("POST", "/a", body={}), handler).status == 200

    def test_entry_bound_evicts_oldest(self):
        cache = ResponseCacheMiddleware(["POST /a"], max_entries=2)
        pipeline = MiddlewarePipeline([cache])
        for i in range(3):
            pipeline(Request("POST", "/a", body={"i": i}), ok_handler)
        assert cache.snapshot()["entries"] == 2
        # Entry 0 was evicted; entry 2 is still warm.
        calls = []
        handler = lambda r: calls.append(1) or ok_handler(r)
        pipeline(Request("POST", "/a", body={"i": 0}), handler)
        pipeline(Request("POST", "/a", body={"i": 2}), handler)
        assert len(calls) == 1

    def test_cached_body_immune_to_caller_mutation(self):
        cache = ResponseCacheMiddleware(["POST /a"])
        pipeline = MiddlewarePipeline([cache])
        handler = lambda r: Response(status=200, body={"items": [1, 2]})
        first = pipeline(Request("POST", "/a", body={}), handler)
        first.body["items"].clear()  # an in-process caller misbehaving
        second = pipeline(Request("POST", "/a", body={}), lambda r: None)
        assert second.headers["X-Response-Cache"] == "hit"
        assert second.body == {"items": [1, 2]}
        # ... and mutating a hit does not corrupt later hits either.
        second.body["items"].append(3)
        third = pipeline(Request("POST", "/a", body={}), lambda r: None)
        assert third.body == {"items": [1, 2]}

    def test_clear(self):
        cache = ResponseCacheMiddleware(["POST /a"])
        pipeline = MiddlewarePipeline([cache])
        pipeline(Request("POST", "/a", body={}), ok_handler)
        cache.clear()
        calls = []
        pipeline(Request("POST", "/a", body={}),
                 lambda r: calls.append(1) or ok_handler(r))
        assert calls == [1]
