"""Pre-fork multi-worker mode and the shared warm state behind it.

Two layers of coverage:

* **shared-state semantics in-process** — two :class:`ConfigService`
  instances pointed at one ``shared_dir`` stand in for two forked
  workers: a response primed on one must replay as a spill hit on the
  other, and a job owned by one must be visible (and cancellable, and
  tenant-isolated) from the other through the shared job store;
* **the real daemon** — one subprocess test boots
  ``serve --processes 2``, proves both workers answer, and drains the
  fleet with SIGTERM to exit 0.
"""

from __future__ import annotations

import os
import re
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.service import ConfigService, ServiceClient, serve
from repro.service.prefork import reuseport_available

SRC_ROOT = Path(repro.__file__).parents[1]

SWEEP_BODY = {
    "dataset": {"workload": "taxi", "users": 3, "seed": 5},
    "points": 2,
    "replications": 1,
}


def _worker(shared_dir) -> ConfigService:
    return ConfigService(workers=1, shared_dir=shared_dir)


class TestSharedResponseCache:
    def test_sibling_serves_primed_response_as_hit(self, tmp_path):
        with ServiceClient(_worker(tmp_path)) as primer:
            primed = primer.sweep(**SWEEP_BODY)
            assert primer.last_headers.get("X-Response-Cache") == "miss"

        with ServiceClient(_worker(tmp_path)) as sibling:
            replay = sibling.sweep(**SWEEP_BODY)
            assert sibling.last_headers.get("X-Response-Cache") == "hit"
            snapshot = sibling.metrics()["response_cache"]

        assert replay["points"] == primed["points"]
        assert replay["engine"]["executions_this_request"] == 0
        assert snapshot["spill_hits"] == 1
        assert snapshot["spill"] is True

    def test_restarted_single_worker_starts_warm(self, tmp_path):
        """The same promotion covers a plain daemon restart."""
        with ServiceClient(_worker(tmp_path)) as before:
            before.sweep(**SWEEP_BODY)
        with ServiceClient(_worker(tmp_path)) as after:
            replay = after.sweep(**SWEEP_BODY)
            assert after.last_headers.get("X-Response-Cache") == "hit"
        assert replay["engine"]["executions_this_request"] == 0

    def test_without_shared_dir_siblings_are_cold(self, tmp_path):
        with ServiceClient(ConfigService(workers=1)) as primer:
            primer.sweep(**SWEEP_BODY)
        with ServiceClient(ConfigService(workers=1)) as sibling:
            sibling.sweep(**SWEEP_BODY)
            assert sibling.last_headers.get("X-Response-Cache") == "miss"


class TestSharedJobStore:
    def test_sibling_sees_owned_job_to_completion(self, tmp_path):
        owner = _worker(tmp_path)
        sibling = _worker(tmp_path)
        try:
            with ServiceClient(owner) as client:
                job = client.submit("sweep", SWEEP_BODY)
                final = client.wait(job["job_id"], timeout_s=60.0)
            assert final["status"] == "done"

            remote = sibling.jobs.remote_snapshot(job["job_id"])
            assert remote is not None
            assert remote["status"] == "done"
            assert len(remote["result"]["points"]) == 2
        finally:
            owner.close(grace_s=5.0)
            sibling.close(grace_s=5.0)

    def test_remote_cancel_leaves_marker_the_owner_polls(self, tmp_path):
        owner = _worker(tmp_path)
        sibling = _worker(tmp_path)
        try:
            with ServiceClient(owner) as client:
                # Big enough that the cancel lands mid-run.
                slow = client.submit("sweep", {
                    "dataset": {"workload": "taxi", "users": 6,
                                "seed": 9},
                    "points": 20, "replications": 3,
                })
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    snapshot = sibling.jobs.request_remote_cancel(
                        slow["job_id"]
                    )
                    if snapshot is not None:
                        break
                    time.sleep(0.02)
                assert snapshot is not None
                assert snapshot["cancel_requested"] is True
                final = client.wait(slow["job_id"], timeout_s=60.0)
            assert final["status"] in ("cancelled", "done")
        finally:
            owner.close(grace_s=5.0)
            sibling.close(grace_s=5.0)

    def test_remote_snapshot_enforces_tenant(self, tmp_path):
        owner = _worker(tmp_path)
        sibling = _worker(tmp_path)
        try:
            with ServiceClient(owner) as client:
                job = client.submit("sweep", SWEEP_BODY)
                client.wait(job["job_id"], timeout_s=60.0)
                job_id = job["job_id"]
            # The anonymous tenant owns it; another tenant sees None,
            # exactly as the HTTP layer would 404.
            assert sibling.jobs.remote_snapshot(
                job_id, tenant="mallory"
            ) is None
            assert sibling.jobs.remote_snapshot(job_id) is not None
        finally:
            owner.close(grace_s=5.0)
            sibling.close(grace_s=5.0)

    def test_unknown_job_is_none(self, tmp_path):
        service = _worker(tmp_path)
        try:
            assert service.jobs.remote_snapshot("job-nope") is None
            assert service.jobs.request_remote_cancel("job-nope") is None
        finally:
            service.close(grace_s=5.0)


class TestSharedScenarioRegistry:
    def test_sibling_sees_registered_scenario(self, tmp_path):
        with ServiceClient(_worker(tmp_path)) as primer:
            primer.register_dataset(
                "myfleet", "taxi", {"users": 3, "seed": 5},
                "the shared fixture",
            )
        with ServiceClient(_worker(tmp_path)) as sibling:
            names = {
                spec["name"] for spec in sibling.datasets()["scenarios"]
            }
            assert "myfleet" in names
            # The persisted registration is evaluable, not just listed.
            result = sibling.sweep(
                {"scenario": "myfleet"}, points=2, replications=1
            )
            assert len(result["points"]) == 2

    def test_sibling_register_conflict_is_409(self, tmp_path):
        """Without replace=True a sibling cannot clobber the name —
        which proves registration syncs from disk before validating."""
        from repro.service import ServiceClientError

        with ServiceClient(_worker(tmp_path)) as primer:
            primer.register_dataset("myfleet", "taxi", {"users": 3})
        with ServiceClient(_worker(tmp_path)) as sibling:
            with pytest.raises(ServiceClientError) as excinfo:
                sibling.register_dataset("myfleet", "taxi", {"users": 4})
            assert excinfo.value.status == 409
            assert excinfo.value.code == "scenario-exists"
            # replace=True wins and persists back.
            sibling.register_dataset(
                "myfleet", "taxi", {"users": 4}, replace=True
            )
        with ServiceClient(_worker(tmp_path)) as third:
            spec = {
                s["name"]: s for s in third.datasets()["scenarios"]
            }["myfleet"]
            assert spec["params"]["users"] == 4

    def test_corrupt_store_is_quarantined_not_fatal(self, tmp_path):
        with ServiceClient(_worker(tmp_path)) as primer:
            primer.register_dataset("myfleet", "taxi", {"users": 3})
        store_files = list((tmp_path / "scenarios").glob("*.json"))
        assert len(store_files) == 1
        store_files[0].write_text("{not json")
        with ServiceClient(_worker(tmp_path)) as sibling:
            names = {
                spec["name"] for spec in sibling.datasets()["scenarios"]
            }
            # The corrupt store is set aside; builtins still answer.
            assert "myfleet" not in names
            assert names  # builtins survived
        assert list((tmp_path / "scenarios").glob("*.corrupt"))

    def test_without_shared_dir_registry_is_local(self):
        with ServiceClient(ConfigService(workers=1)) as a:
            a.register_dataset("local-only", "taxi", {"users": 3})
        with ServiceClient(ConfigService(workers=1)) as b:
            names = {
                spec["name"] for spec in b.datasets()["scenarios"]
            }
            assert "local-only" not in names


class TestServeGuards:
    def test_prefork_rejects_prebuilt_service(self):
        service = ConfigService(workers=1)
        try:
            with pytest.raises(ValueError):
                serve(service=service, processes=2)
        finally:
            service.close(grace_s=5.0)

    def test_reuseport_probe_answers_a_bool(self):
        assert isinstance(reuseport_available(), bool)
        if sys.platform == "linux":
            # Every kernel this library targets (>= 3.9) has it.
            assert reuseport_available() is True
            assert hasattr(socket, "SO_REUSEPORT")


_LISTENING = re.compile(r"listening on (http://[\d.]+:\d+)")


class TestPreforkDaemon:
    def test_boot_answer_drain(self, tmp_path):
        """`serve --processes 2` boots, serves, drains on SIGTERM."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_ROOT) + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "--workers", "1", "--grace", "5",
             "--processes", "2", "--cache-dir", str(tmp_path)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            banner = None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if not line:
                    break
                match = _LISTENING.search(line)
                if match:
                    banner = line
                    base_url = match.group(1)
                    break
            assert banner is not None, "daemon never announced itself"
            assert "2 workers" in banner

            from repro.service import HttpServiceClient

            client = HttpServiceClient(base_url, timeout_s=30.0)
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["worker_pid"] not in (None, process.pid)
            assert health["shared_dir"] == str(tmp_path)

            # Leave a live stream session behind: the SIGTERM drain
            # must flush its window metrics before teardown.
            out = client.stream_update("drain-ride", [
                [float(i * 60), 37.76 + i * 1e-4, -122.42]
                for i in range(6)
            ])
            assert out["updates"] == 6

            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30.0) == 0

            import json

            flushes = []
            for path in (tmp_path / "streaming").glob("flush-*.json"):
                payload = json.loads(path.read_text())
                if payload["session"] == "drain-ride":
                    flushes.append(payload)
            assert flushes, "SIGTERM drain never flushed the session"
            assert flushes[0]["kind"] == "stream_flush"
            assert flushes[0]["evicted"] is False
            assert flushes[0]["metrics"]["updates"] == 6
            assert flushes[0]["metrics"]["window"]["records"] == 6
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)
