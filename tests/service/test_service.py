"""End-to-end tests of the configuration service (in-process client)."""

import pytest

from repro.service import (
    ConfigService,
    ServiceClient,
    ServiceClientError,
)

TAXI = {"workload": "taxi", "users": 3, "seed": 1}


@pytest.fixture(scope="module")
def client():
    with ServiceClient(ConfigService()) as shared:
        yield shared


@pytest.fixture
def fresh_client():
    with ServiceClient(ConfigService()) as c:
        yield c


class TestHealthz:
    def test_reports_status_and_engine(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["engine"]["policy"] == "serial"
        assert health["uptime_s"] >= 0
        assert "version" in health


class TestProtect:
    def test_returns_protected_records(self, fresh_client):
        result = fresh_client.protect(TAXI, lppm="geo_ind", param=0.01, seed=3)
        assert result["param_name"] == "epsilon"
        assert result["n_users"] == 3
        assert len(result["records"]) == result["n_records"]
        user, t, lat, lon = result["records"][0]
        assert isinstance(user, str) and isinstance(lat, float)

    def test_deterministic_given_seed(self, fresh_client):
        # /protect is not response-cached (record dumps are unbounded
        # bytes), so this really is two executions agreeing.
        a = fresh_client.protect(TAXI, param=0.01, seed=7)
        b = fresh_client.protect(TAXI, param=0.01, seed=7)
        assert a["records"] == b["records"]
        assert fresh_client.metrics()["response_cache"]["hits"] == 0

    def test_include_records_false(self, fresh_client):
        result = fresh_client.protect(TAXI, include_records=False)
        assert "records" not in result
        assert result["n_records"] > 0

    def test_out_of_range_param_is_typed_error(self, fresh_client):
        with pytest.raises(ServiceClientError) as excinfo:
            fresh_client.protect(TAXI, lppm="geo_ind", param=-1.0)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid-param"

    def test_unknown_lppm_rejected_by_validation(self, fresh_client):
        with pytest.raises(ServiceClientError) as excinfo:
            fresh_client.protect(TAXI, lppm="nope")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid-request"


class TestSweepWarmCache:
    """The PR's acceptance claim: a repeated identical sweep is free."""

    def test_repeat_sweep_runs_zero_new_executions(self, fresh_client):
        first = fresh_client.sweep(TAXI, points=4, replications=2)
        executions_after_first = first["engine"]["executions"]
        assert first["engine"]["executions_this_request"] == \
            executions_after_first > 0

        second = fresh_client.sweep(TAXI, points=4, replications=2)
        assert second["points"] == first["points"]
        # The replayed cost receipt must not claim the original's cost.
        assert second["engine"]["executions_this_request"] == 0

        metrics = fresh_client.metrics()
        # /metrics proves the repeat cost nothing: the engine's real
        # execution count did not move, and the response cache hit.
        assert metrics["engine"]["executions"] == executions_after_first
        assert metrics["response_cache"]["hits"] == 1
        assert metrics["service"]["response_cache_hits"] == 1

    def test_sweep_shape(self, fresh_client):
        result = fresh_client.sweep(TAXI, points=4, replications=1)
        assert result["param"] == "epsilon"
        assert len(result["points"]) == 4
        point = result["points"][0]
        assert {"epsilon", "privacy_mean", "privacy_std", "utility_mean",
                "utility_std", "n_replications"} <= set(point)

    def test_replayed_engine_block_is_live(self, fresh_client):
        """A cache hit's cost receipt shows current totals, not the
        totals frozen when the entry was stored."""
        fresh_client.sweep(TAXI, points=4, replications=1)
        other = {"workload": "taxi", "users": 4, "seed": 9}
        fresh_client.sweep(other, points=4, replications=1)
        replay = fresh_client.sweep(TAXI, points=4, replications=1)
        live = fresh_client.metrics()["engine"]["executions"]
        assert replay["engine"]["executions_this_request"] == 0
        assert replay["engine"]["executions"] == live == 8

    def test_configurator_registry_spans_endpoints(self, fresh_client):
        """configure + recommend after sweep reuse the fitted model."""
        fresh_client.sweep(TAXI, points=4, replications=1)
        conf = fresh_client.configure(TAXI, points=4, replications=1)
        assert conf["engine"]["executions_this_request"] == 0
        rec = fresh_client.recommend(
            TAXI,
            [{"kind": "privacy", "op": "<=", "target": 0.5},
             {"kind": "utility", "op": ">=", "target": 0.1}],
            points=4, replications=1,
        )
        assert rec["engine"]["executions_this_request"] == 0

    def test_engine_cache_dedups_across_replication_counts(self, fresh_client):
        """1-replication jobs are a prefix of 2-replication jobs."""
        fresh_client.sweep(TAXI, points=4, replications=1)
        before = fresh_client.metrics()["engine"]["executions"]
        fresh_client.sweep(TAXI, points=4, replications=2)
        after = fresh_client.metrics()["engine"]["executions"]
        # Only the second replication seeds were new work.
        assert after - before == 4


class TestConfigureAndRecommend:
    def test_configure_returns_equation2_model(self, fresh_client):
        result = fresh_client.configure(TAXI, points=6, replications=1)
        model = result["model"]
        assert model["param"] == "epsilon"
        assert set(model["coefficients"]) == {"a", "b", "alpha", "beta"}
        lo, hi = model["domain"]
        assert 0 < lo < hi

    def test_recommend_feasible(self, fresh_client):
        result = fresh_client.recommend(
            TAXI,
            [{"kind": "privacy", "op": "<=", "target": 0.9},
             {"kind": "utility", "op": ">=", "target": 0.05}],
            points=6, replications=1,
        )
        rec = result["recommendation"]
        assert rec["feasible"] is True
        assert rec["param"] == "epsilon"
        assert rec["interval"][0] <= rec["value"] <= rec["interval"][1]

    def test_bad_objective_is_typed_error(self, fresh_client):
        for objectives in (
            [],
            [{"kind": "comfort", "op": "<=", "target": 0.1}],
            [{"kind": "privacy", "op": "<=", "target": "low"}],
            [{"kind": "privacy", "op": "<="}],
            ["privacy <= 0.1"],
        ):
            with pytest.raises(ServiceClientError) as excinfo:
                fresh_client.recommend(TAXI, objectives,
                                       points=4, replications=1)
            assert excinfo.value.status == 400

    def test_sweep_survives_degenerate_model_fit(self, fresh_client):
        """A sweep whose model *fit* fails is still a valid sweep."""
        tiny = {"workload": "taxi", "users": 2, "seed": 5}
        result = fresh_client.sweep(tiny, points=3, replications=1)
        assert len(result["points"]) == 3
        # The second ask re-aggregates from the warm engine cache.
        again = fresh_client.sweep(tiny, points=3, replications=1)
        assert again["engine"]["executions_this_request"] == 0

    def test_degenerate_model_fit_is_422_not_500(self, fresh_client):
        """/configure needs the model, so there the fit error surfaces."""
        with pytest.raises(ServiceClientError) as excinfo:
            fresh_client.configure({"workload": "taxi", "users": 2,
                                    "seed": 5}, points=3, replications=1)
        assert excinfo.value.status == 422
        assert excinfo.value.code == "evaluation-failed"


class TestDatasetSpecs:
    def test_inline_records(self, fresh_client):
        records = [
            ["u1", float(i * 60), 45.0 + i * 1e-4, 5.0] for i in range(50)
        ] + [
            ["u2", float(i * 60), 45.1, 5.1 + i * 1e-4] for i in range(50)
        ]
        result = fresh_client.protect({"records": records}, param=0.01)
        assert result["n_users"] == 2
        assert result["n_records"] == 100

    def test_csv_path(self, fresh_client, tmp_path):
        from repro.mobility import write_csv
        from repro.synth import TaxiFleetConfig, generate_taxi_fleet

        path = tmp_path / "fleet.csv"
        write_csv(generate_taxi_fleet(TaxiFleetConfig(n_cabs=2, seed=3)), path)
        result = fresh_client.protect({"path": str(path)}, param=0.01)
        assert result["n_users"] == 2

    def test_changed_file_is_reloaded(self, fresh_client, tmp_path):
        """A path spec follows the file: editing the CSV invalidates
        the dataset registry entry (keyed on mtime + size)."""
        import os
        from repro.mobility import write_csv
        from repro.synth import TaxiFleetConfig, generate_taxi_fleet

        path = tmp_path / "fleet.csv"
        write_csv(generate_taxi_fleet(TaxiFleetConfig(n_cabs=2, seed=3)), path)
        first = fresh_client.protect({"path": str(path)}, param=0.01,
                                     include_records=False)
        assert first["n_users"] == 2
        write_csv(generate_taxi_fleet(TaxiFleetConfig(n_cabs=4, seed=3)), path)
        os.utime(path, ns=(0, 0))  # defeat same-second mtime granularity
        second = fresh_client.protect({"path": str(path)}, param=0.01,
                                      include_records=False)
        assert second["n_users"] == 4

    def test_path_specs_bypass_response_cache(self, fresh_client, tmp_path):
        from repro.mobility import write_csv
        from repro.synth import TaxiFleetConfig, generate_taxi_fleet

        path = tmp_path / "fleet.csv"
        write_csv(generate_taxi_fleet(TaxiFleetConfig(n_cabs=3, seed=3)), path)
        fresh_client.sweep({"path": str(path)}, points=4, replications=1)
        exec_after_first = fresh_client.metrics()["engine"]["executions"]
        fresh_client.sweep({"path": str(path)}, points=4, replications=1)
        metrics = fresh_client.metrics()
        # No response-cache entry was written or hit, yet the repeat
        # was still free via the configurator/engine tiers.
        assert metrics["response_cache"] == \
            {"entries": 0, "hits": 0, "misses": 0,
             "spill": False, "spill_hits": 0}
        assert metrics["engine"]["executions"] == exec_after_first

    def test_missing_path_is_404(self, fresh_client):
        with pytest.raises(ServiceClientError) as excinfo:
            fresh_client.protect({"path": "/no/such/file.csv"})
        assert excinfo.value.status == 404
        assert excinfo.value.code == "dataset-not-found"

    @pytest.mark.parametrize("spec", [
        {},
        {"workload": "taxi", "path": "x.csv"},
        {"workload": "zeppelin"},
        {"workload": "taxi", "users": 0},
        {"workload": "taxi", "users": True},
        {"workload": "taxi", "extra": 1},
        {"path": "x.csv", "note": "unknown keys must not fork cache keys"},
        {"records": [], "seed": 1},
        {"records": []},
        {"records": [["u1", 0.0, 45.0]]},
        {"records": [["", 0.0, 45.0, 5.0]]},
        {"records": [["u1", "noon", 45.0, 5.0]]},
    ])
    def test_bad_specs_are_typed_400s(self, fresh_client, spec):
        with pytest.raises(ServiceClientError) as excinfo:
            fresh_client.protect(spec)
        assert excinfo.value.status in (400, 404)

    def test_same_spec_shares_one_dataset(self, fresh_client):
        fresh_client.sweep(TAXI, points=4, replications=1)
        fresh_client.sweep(dict(TAXI), points=5, replications=1)
        assert fresh_client.healthz()["datasets"] == 1
        assert fresh_client.healthz()["configurators"] == 2

    def test_default_spellings_share_one_dataset(self, fresh_client):
        """Omitted workload defaults key like their explicit spelling."""
        fresh_client.protect({"workload": "taxi", "users": 10, "seed": 0},
                             include_records=False)
        fresh_client.protect({"workload": "taxi"}, include_records=False)
        assert fresh_client.healthz()["datasets"] == 1

    def test_default_spellings_share_one_response_cache_entry(
        self, fresh_client
    ):
        explicit = {"workload": "taxi", "users": 10, "seed": 0}
        fresh_client.sweep(explicit, points=4, replications=1)
        fresh_client.sweep({"workload": "taxi"}, points=4, replications=1)
        cache = fresh_client.metrics()["response_cache"]
        assert cache == {"entries": 1, "hits": 1, "misses": 1,
                         "spill": False, "spill_hits": 0}


class TestIntrospectionLiveness:
    def test_healthz_not_blocked_by_a_running_sweep(self, fresh_client):
        """/healthz answers while another thread is mid-sweep.

        The engine is thread-safe and introspection never touches the
        fit path, so a long evaluation on one thread must not stall a
        health probe on another.
        """
        import threading

        results = []
        sweeping = threading.Thread(
            target=lambda: fresh_client.sweep(
                {"workload": "taxi", "users": 6, "seed": 3},
                points=6, replications=2,
            )
        )
        sweeping.start()
        try:
            prober = threading.Thread(
                target=lambda: results.append(fresh_client.healthz())
            )
            prober.start()
            prober.join(timeout=5)
            assert results, "/healthz blocked behind a running sweep"
        finally:
            sweeping.join(timeout=30)
        assert results[0]["status"] == "ok"


class TestRouting:
    def test_unknown_endpoint_404_lists_routes(self, client):
        response = client.service.handle("GET", "/nope")
        assert response.status == 404
        assert "/sweep" in str(response.body["error"]["details"])

    def test_wrong_method_405(self, client):
        response = client.service.handle("GET", "/sweep")
        assert response.status == 405

    def test_every_response_has_request_id(self, client):
        response = client.service.handle("GET", "/healthz")
        assert response.headers["X-Request-Id"].startswith("req-")

    def test_metrics_lists_pipeline_order(self, client):
        metrics = client.metrics()
        assert metrics["pipeline"] == [
            "request_id", "compression", "logging", "metrics",
            "error_boundary", "auth", "rate_limit", "load_shed",
            "deadline", "validation", "response_cache",
        ]

    def test_unrouted_paths_share_one_metrics_bucket(self, fresh_client):
        for i in range(5):
            fresh_client.service.handle("GET", f"/scanner-probe-{i}")
        by_endpoint = fresh_client.metrics()["service"]["requests_by_endpoint"]
        assert by_endpoint.get("<unrouted>") == 5
        assert not any("scanner-probe" in key for key in by_endpoint)


class TestOpenLppmRegistry:
    def test_exotic_constructor_is_typed_400_not_500(self, fresh_client,
                                                     monkeypatch):
        from repro.service import handlers as handlers_module

        monkeypatch.setattr(
            handlers_module, "available_lppms", lambda: ["weird"]
        )
        monkeypatch.setattr(
            handlers_module, "primary_param",
            lambda name: (_ for _ in ()).throw(
                ValueError("LPPM 'weird' takes no parameters")
            ),
        )
        with ServiceClient(ConfigService()) as client:
            with pytest.raises(ServiceClientError) as excinfo:
                client.protect(TAXI, lppm="weird")
            assert excinfo.value.status == 400
            assert excinfo.value.code == "invalid-param"

    def test_stat_permission_error_is_400_not_404(self, fresh_client,
                                                  monkeypatch, tmp_path):
        import repro.service.state as state_module

        path = tmp_path / "fleet.csv"
        path.write_text("user,time_s,lat,lon\n")
        monkeypatch.setattr(
            state_module.os, "stat",
            lambda p: (_ for _ in ()).throw(PermissionError(13, "denied", p)),
        )
        with pytest.raises(ServiceClientError) as excinfo:
            fresh_client.protect({"path": str(path)})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid-dataset"
