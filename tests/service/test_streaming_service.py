"""The /stream endpoints: lifecycle, typed errors, auth and metrics.

The streaming path rides the full middleware pipeline — auth and rate
limits apply, the response cache must NOT (every chunk is new state) —
and its counters surface in ``GET /metrics`` under ``streaming`` next
to the per-endpoint in-flight gauges.
"""

import pytest

from repro.service import (
    ApiKeyStore,
    ConfigService,
    ServiceClient,
    ServiceClientError,
)

RECORDS = [[float(i * 60), 37.76 + i * 1e-4, -122.42] for i in range(8)]


@pytest.fixture
def client():
    with ServiceClient(ConfigService()) as c:
        yield c


class TestStreamLifecycle:
    def test_update_creates_and_releases(self, client):
        out = client.stream_update("ride-1", RECORDS)
        assert out["session"] == "ride-1"
        assert out["accepted"] == 8
        assert out["updates"] == 8
        assert len(out["released"]) == 8
        for update in out["released"]:
            assert update is None or (
                isinstance(update, list) and len(update) == 3
            )

    def test_chunked_updates_accumulate(self, client):
        client.stream_update("ride-2", RECORDS[:4])
        out = client.stream_update("ride-2", RECORDS[4:])
        assert out["updates"] == 8

    def test_metrics_reports_the_window(self, client):
        client.stream_update("ride-3", RECORDS, window_s=300.0)
        metrics = client.stream_metrics("ride-3")
        assert metrics["session"] == "ride-3"
        assert metrics["lppm"] == "geo_ind"
        assert metrics["updates"] == 8
        window = metrics["window"]
        assert window["span_s"] == 300.0
        assert window["records"] >= 1
        assert "distortion_m" in window
        assert "stay_points" in window and "pois" in window

    def test_close_returns_final_metrics_then_404(self, client):
        client.stream_update("ride-4", RECORDS)
        out = client.stream_close("ride-4")
        assert out["closed"] is True
        assert out["final"]["updates"] == 8
        for method in (client.stream_metrics, client.stream_close):
            with pytest.raises(ServiceClientError) as excinfo:
                method("ride-4")
            assert excinfo.value.status == 404
            assert excinfo.value.code == "stream-session-not-found"

    def test_unknown_session_metrics_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.stream_metrics("never-opened")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "stream-session-not-found"

    def test_stream_post_bypasses_the_response_cache(self, client):
        client.stream_update("ride-5", RECORDS[:4])
        client.stream_update("ride-5", RECORDS[:4])  # identical body
        assert "X-Response-Cache" not in client.last_headers
        # The second identical chunk really reached the session.
        assert client.stream_metrics("ride-5")["updates"] == 8


class TestStreamErrors:
    def test_config_conflict_is_409(self, client):
        client.stream_update("ride-6", RECORDS[:2], lppm="geo_ind")
        with pytest.raises(ServiceClientError) as excinfo:
            client.stream_update("ride-6", RECORDS[2:4], lppm="gaussian",
                                 param=25.0)
        assert excinfo.value.status == 409
        assert excinfo.value.code == "stream-conflict"

    @pytest.mark.parametrize("bad", [
        [[0.0, 37.76]],                      # wrong arity
        [[0.0, "north", -122.42]],           # non-numeric
        [[0.0, 91.0, -122.42]],              # latitude out of range
        [[0.0, 37.76, 181.0]],               # longitude out of range
        [["nan", 37.76, -122.42]],           # parses to a non-finite float
    ])
    def test_invalid_records_are_400(self, client, bad):
        with pytest.raises(ServiceClientError) as excinfo:
            client.stream_update("ride-7", bad)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid-records"

    def test_unknown_lppm_is_400(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.stream_update("ride-8", RECORDS, lppm="nope")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid-request"

    def test_bad_param_is_400(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.stream_update("ride-9", RECORDS, param=-1.0)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid-param"

    def test_nonpositive_window_is_400(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.stream_update("ride-10", RECORDS, window_s=0.0)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid-request"

    def test_draining_service_is_503(self, client):
        client.service.state.streaming.close()
        with pytest.raises(ServiceClientError) as excinfo:
            client.stream_update("ride-11", RECORDS)
        assert excinfo.value.status == 503
        assert excinfo.value.code == "shutting-down"


class TestStreamAuthAndTenancy:
    @pytest.fixture
    def keyed(self):
        store = ApiKeyStore()
        store.add("alice-key", "alice")
        store.add("bob-key", "bob")
        svc = ConfigService(api_keys=store)
        yield svc
        svc.close()

    def test_stream_requires_a_key(self, keyed):
        with pytest.raises(ServiceClientError) as excinfo:
            ServiceClient(keyed).stream_update("ride", RECORDS)
        assert excinfo.value.status == 401
        assert excinfo.value.code == "missing-api-key"

    def test_sessions_are_tenant_scoped(self, keyed):
        alice = ServiceClient(keyed, api_key="alice-key")
        bob = ServiceClient(keyed, api_key="bob-key")
        alice.stream_update("shared-name", RECORDS)
        with pytest.raises(ServiceClientError) as excinfo:
            bob.stream_metrics("shared-name")
        assert excinfo.value.status == 404
        # Bob can open his own stream under the same name.
        out = bob.stream_update("shared-name", RECORDS, lppm="gaussian",
                                param=25.0)
        assert out["tenant"] == "bob"
        assert alice.stream_metrics("shared-name")["lppm"] == "geo_ind"


class TestStreamObservability:
    def test_metrics_has_streaming_block(self, client):
        client.stream_update("ride-12", RECORDS)
        snapshot = client.metrics()
        streaming = snapshot["streaming"]
        assert streaming["sessions_active"] >= 1
        assert streaming["sessions_opened"] >= 1
        assert streaming["updates_total"] >= 8
        assert {"evictions", "flushes"} <= set(streaming)

    def test_in_flight_gauges_present(self, client):
        snapshot = client.metrics()
        gauges = snapshot["service"]["in_flight_by_endpoint"]
        # The only live request is this GET /metrics itself.
        assert gauges.get("GET /metrics") == 1
