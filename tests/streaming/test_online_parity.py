"""Online/batch parity: replayed streams vs the offline protect path.

``LPPM.protect_online`` hands back a stateful :class:`OnlineProtector`
whose :meth:`result` must be **bit-identical** to protecting the same
records offline through :meth:`LPPM.protect` — for every registered
mechanism, on a plain trace and on the adversarial shapes (empty
stream, single point, duplicate timestamps, an antimeridian straddle).
The live ``push`` emissions are also pinned where the contract is
exact: valid coordinates, subsampling's always-keep-first rule, and
input validation mirroring :class:`Trace`.
"""

import numpy as np
import pytest

from repro.geo import LatLon
from repro.lppm import (
    ElasticGeoIndistinguishability,
    GaussianPerturbation,
    GeoIndistinguishability,
    GridRounding,
    Pipeline,
    Promesse,
    Subsampling,
    TimePerturbation,
    UniformDiskNoise,
    available_lppms,
)
from repro.mobility import Dataset, Trace

SEED = 11


def _normal_trace(user: str = "e_normal", n: int = 24) -> Trace:
    rng = np.random.default_rng(9)
    return Trace(
        user,
        np.cumsum(rng.uniform(5.0, 60.0, size=n)),
        37.75 + np.cumsum(rng.normal(0.0, 2e-4, size=n)),
        -122.41 + np.cumsum(rng.normal(0.0, 2e-4, size=n)),
    )


def _adversarial_traces() -> list:
    rng = np.random.default_rng(9)
    return [
        Trace("a_empty", [], [], []),
        Trace("b_single", [100.0], [37.7601], [-122.4202]),
        Trace(
            "c_dup_times",
            [0.0, 0.0, 10.0, 10.0, 10.0, 50.0],
            37.76 + rng.normal(0.0, 1e-3, size=6),
            -122.42 + rng.normal(0.0, 1e-3, size=6),
        ),
        Trace(
            "d_antimeridian",
            np.arange(8) * 30.0,
            37.76 + rng.normal(0.0, 1e-3, size=8),
            np.asarray([179.5, -179.5] * 4) + rng.normal(0.0, 1e-3, size=8),
        ),
        _normal_trace(),
    ]


TRACES = {t.user: t for t in _adversarial_traces()}

# One configuration per registered mechanism (the mechanisms with a
# true O(1) live path and the prefix-replay fallbacks alike).
MECHANISMS = {
    "geo_ind": lambda: GeoIndistinguishability(0.05),
    "elastic": lambda: ElasticGeoIndistinguishability(
        0.05, cell_size_m=250.0
    ),
    "gaussian": lambda: GaussianPerturbation(25.0),
    "uniform_disk": lambda: UniformDiskNoise(60.0),
    "rounding_centroid": lambda: GridRounding(150.0),
    "rounding_fixed_ref": lambda: GridRounding(
        150.0, ref=LatLon(37.76, -122.42)
    ),
    "subsampling": lambda: Subsampling(0.5),
    "time_perturbation": lambda: TimePerturbation(45.0),
    "promesse": lambda: Promesse(80.0),
    "pipeline": lambda: Pipeline(
        [Subsampling(0.7), GaussianPerturbation(30.0)]
    ),
}


def _replay(lppm, trace: Trace):
    """Push every record of ``trace`` through a fresh online stream."""
    protector = lppm.protect_online(seed=SEED, user=trace.user)
    live = [
        protector.push(t, lat, lon)
        for t, lat, lon in zip(trace.times_s, trace.lats, trace.lons)
    ]
    return protector, live


class TestOnlineBatchParity:
    def test_every_registered_mechanism_is_covered(self):
        built = {factory().name for factory in MECHANISMS.values()}
        assert set(available_lppms()) <= built

    @pytest.mark.parametrize("trace_name", sorted(TRACES))
    @pytest.mark.parametrize("mech_name", sorted(MECHANISMS))
    def test_replay_is_bit_identical_to_batch(self, mech_name, trace_name):
        trace = TRACES[trace_name]
        lppm = MECHANISMS[mech_name]()
        protector, _ = _replay(lppm, trace)
        try:
            batch = lppm.protect(
                Dataset.from_traces([trace]), seed=SEED
            )[trace.user]
        except ValueError as batch_error:
            # Parity still holds when the batch path itself refuses the
            # input (elastic cannot build a density prior over an
            # all-empty dataset): the replay refuses identically.
            with pytest.raises(type(batch_error)):
                protector.result()
            return
        online = protector.result()
        assert np.array_equal(online.times_s, batch.times_s)
        assert np.array_equal(online.lats, batch.lats)
        assert np.array_equal(online.lons, batch.lons)

    @pytest.mark.parametrize("mech_name", sorted(MECHANISMS))
    def test_live_emissions_are_valid_records(self, mech_name):
        trace = TRACES["e_normal"]
        lppm = MECHANISMS[mech_name]()
        _, live = _replay(lppm, trace)
        assert len(live) == len(trace)
        emitted = [r for r in live if r is not None]
        assert emitted, mech_name
        for t, lat, lon in emitted:
            assert np.isfinite(t) and np.isfinite(lat) and np.isfinite(lon)
            assert abs(lat) <= 90.0 and abs(lon) <= 180.0

    def test_pushed_trace_preserves_the_stream(self):
        trace = TRACES["e_normal"]
        protector, _ = _replay(GeoIndistinguishability(0.05), trace)
        pushed = protector.pushed_trace()
        assert np.array_equal(pushed.times_s, trace.times_s)
        assert np.array_equal(pushed.lats, trace.lats)
        assert np.array_equal(pushed.lons, trace.lons)
        assert protector.n_pushed == len(trace)

    def test_empty_stream_result_is_empty(self):
        protector = GeoIndistinguishability(0.05).protect_online(
            seed=SEED, user="nobody"
        )
        assert protector.n_pushed == 0
        assert protector.result().is_empty

    def test_subsampling_always_keeps_the_first_record(self):
        # The online rule mirrors the batch path: record 0 survives even
        # at vanishing keep fractions, so a session is never silent.
        protector = Subsampling(1e-9).protect_online(seed=SEED, user="u")
        first = protector.push(0.0, 37.76, -122.42)
        assert first == (0.0, 37.76, -122.42)
        dropped = [
            protector.push(10.0 * i, 37.76, -122.42) for i in range(1, 40)
        ]
        assert all(r is None for r in dropped)

    def test_push_rejects_invalid_coordinates(self):
        protector = GeoIndistinguishability(0.05).protect_online(seed=SEED)
        with pytest.raises(ValueError):
            protector.push(0.0, 91.0, 0.0)
        with pytest.raises(ValueError):
            protector.push(0.0, 0.0, 181.0)
        with pytest.raises(ValueError):
            protector.push(float("nan"), 0.0, 0.0)
        assert protector.n_pushed == 0

    def test_empty_user_is_rejected(self):
        with pytest.raises(ValueError):
            GeoIndistinguishability(0.05).protect_online(seed=SEED, user="")

    def test_different_seeds_diverge(self):
        trace = TRACES["e_normal"]
        lppm = GeoIndistinguishability(0.05)
        a = lppm.protect_online(seed=0, user=trace.user)
        b = lppm.protect_online(seed=1, user=trace.user)
        for t, lat, lon in zip(trace.times_s, trace.lats, trace.lons):
            a.push(t, lat, lon)
            b.push(t, lat, lon)
        assert not np.array_equal(a.result().lats, b.result().lats)
