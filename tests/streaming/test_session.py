"""ProtectionSession window metrics and SessionManager lifecycle.

Window semantics (event-time sliding window ending at the newest
record), bounded-memory behaviour (capacity and idle-TTL eviction with
an injectable clock), configuration-conflict detection, flush-file
persistence, and close/drain idempotence.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.lppm import GeoIndistinguishability, Subsampling
from repro.mobility import Dataset
from repro.streaming import (
    DEFAULT_WINDOW_S,
    ProtectionSession,
    SessionManager,
)


def _records(n: int, start: float = 0.0, step: float = 60.0,
             lat: float = 37.76, lon: float = -122.42):
    return [(start + i * step, lat + i * 1e-4, lon) for i in range(n)]


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, dt: float):
        self.now += dt


class TestProtectionSession:
    def test_empty_session_metrics(self):
        session = ProtectionSession(GeoIndistinguishability(0.05))
        metrics = session.metrics()
        assert metrics["updates"] == 0
        assert metrics["window"] == {
            "span_s": DEFAULT_WINDOW_S, "records": 0, "released": 0,
        }

    def test_window_slides_with_event_time(self):
        session = ProtectionSession(
            GeoIndistinguishability(0.05), window_s=300.0
        )
        session.update(_records(20, start=0.0, step=60.0))
        window = session.metrics()["window"]
        # Newest event is t=1140; the window covers (840, 1140] — five
        # records at 900, 960, 1020, 1080, 1140.
        assert window["to_s"] == pytest.approx(1140.0)
        assert window["from_s"] == pytest.approx(840.0)
        assert window["records"] == 5
        assert window["released"] == 5
        assert window["distortion_m"] > 0
        assert 0.0 <= window["coverage_f1"] <= 1.0

    def test_updates_counted_and_split(self):
        session = ProtectionSession(Subsampling(0.5), seed=3)
        released = session.update(_records(200))
        assert len(released) == 200
        kept = sum(1 for r in released if r is not None)
        assert session.updates == 200
        assert session.released == kept
        assert session.dropped == 200 - kept
        assert 0 < kept < 200

    def test_dropped_records_excluded_from_window_pairs(self):
        session = ProtectionSession(
            Subsampling(1e-9), seed=3, window_s=1e9
        )
        session.update(_records(50))
        window = session.metrics()["window"]
        assert window["records"] == 50
        assert window["released"] == 1  # subsampling always keeps record 0

    def test_metrics_cached_until_stream_advances(self):
        session = ProtectionSession(GeoIndistinguishability(0.05))
        session.update(_records(5))
        first = session.metrics()
        assert session.metrics() is first
        session.update(_records(1, start=1e6))
        assert session.metrics() is not first

    def test_flush_recomputes(self):
        session = ProtectionSession(GeoIndistinguishability(0.05))
        session.update(_records(5))
        cached = session.metrics()
        flushed = session.flush()
        assert flushed is not cached
        assert flushed["updates"] == 5

    def test_replay_matches_batch_protect(self):
        lppm = GeoIndistinguishability(0.05)
        session = ProtectionSession(lppm, user="u1", seed=7)
        session.update(_records(30))
        batch = lppm.protect(
            Dataset.from_traces([session.pushed_trace()]), seed=7
        )["u1"]
        online = session.result()
        assert np.array_equal(online.lats, batch.lats)
        assert np.array_equal(online.lons, batch.lons)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            ProtectionSession(GeoIndistinguishability(0.05), window_s=0.0)


class TestSessionManager:
    def test_first_update_requires_lppm(self):
        manager = SessionManager()
        with pytest.raises(ValueError, match="does not exist yet"):
            manager.update("t", "s", _records(1))

    def test_create_update_get_close(self):
        manager = SessionManager()
        session, live = manager.update(
            "t", "s", _records(10), lppm=GeoIndistinguishability(0.05)
        )
        assert len(live) == 10
        assert manager.get("t", "s") is session
        final = manager.close_session("t", "s")
        assert final["updates"] == 10
        with pytest.raises(KeyError):
            manager.get("t", "s")
        with pytest.raises(KeyError):
            manager.close_session("t", "s")

    def test_tenants_are_isolated(self):
        manager = SessionManager()
        a, _ = manager.update(
            "tenant-a", "s", _records(1), lppm=GeoIndistinguishability(0.05)
        )
        b, _ = manager.update(
            "tenant-b", "s", _records(1), lppm=GeoIndistinguishability(0.05)
        )
        assert a is not b
        assert manager.get("tenant-a", "s") is a

    def test_config_conflict_raises(self):
        manager = SessionManager()
        manager.update(
            "t", "s", _records(1), lppm=GeoIndistinguishability(0.05)
        )
        with pytest.raises(ValueError, match="conflict on: lppm"):
            manager.update(
                "t", "s", _records(1), lppm=GeoIndistinguishability(0.2)
            )
        with pytest.raises(ValueError, match="conflict on: seed"):
            manager.update(
                "t", "s", _records(1),
                lppm=GeoIndistinguishability(0.05), seed=9,
            )
        # Repeating the same configuration is fine.
        manager.update(
            "t", "s", _records(1), lppm=GeoIndistinguishability(0.05)
        )

    def test_capacity_eviction_is_lru(self):
        manager = SessionManager(max_sessions=2)
        lppm = GeoIndistinguishability(0.05)
        manager.update("t", "a", _records(1), lppm=lppm)
        manager.update("t", "b", _records(1), lppm=lppm)
        manager.update("t", "a", _records(1))  # refresh a; b is now LRU
        manager.update("t", "c", _records(1), lppm=lppm)
        assert manager.get("t", "a")
        assert manager.get("t", "c")
        with pytest.raises(KeyError):
            manager.get("t", "b")
        assert manager.stats()["evictions"] == 1

    def test_idle_eviction_uses_injected_clock(self):
        clock = FakeClock()
        manager = SessionManager(idle_ttl_s=100.0, clock=clock)
        lppm = GeoIndistinguishability(0.05)
        manager.update("t", "old", _records(1), lppm=lppm)
        clock.advance(60.0)
        manager.update("t", "fresh", _records(1), lppm=lppm)
        clock.advance(60.0)  # "old" now 120s idle, "fresh" 60s
        assert manager.evict_idle() == 1
        with pytest.raises(KeyError):
            manager.get("t", "old")
        assert manager.get("t", "fresh")
        stats = manager.stats()
        assert stats["sessions_active"] == 1
        assert stats["evictions"] == 1

    def test_stats_counters(self):
        manager = SessionManager()
        lppm = GeoIndistinguishability(0.05)
        manager.update("t", "a", _records(3), lppm=lppm)
        manager.update("t", "b", _records(4), lppm=lppm)
        stats = manager.stats()
        assert stats["sessions_active"] == 2
        assert stats["sessions_opened"] == 2
        assert stats["updates_total"] == 7
        assert stats["flushes"] == 0

    def test_flush_files_written_atomically(self, tmp_path):
        flush_dir = tmp_path / "streaming"
        flush_dir.mkdir()
        manager = SessionManager(flush_dir=flush_dir)
        manager.update(
            "t", "s", _records(5), lppm=GeoIndistinguishability(0.05)
        )
        manager.close_session("t", "s")
        files = sorted(flush_dir.glob("flush-*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["kind"] == "stream_flush"
        assert payload["tenant"] == "t"
        assert payload["session"] == "s"
        assert payload["evicted"] is False
        assert payload["metrics"]["updates"] == 5
        assert payload["metrics"]["window"]["records"] == 5

    def test_close_flushes_everything_and_refuses_updates(self, tmp_path):
        manager = SessionManager(flush_dir=tmp_path)
        lppm = GeoIndistinguishability(0.05)
        manager.update("t", "a", _records(2), lppm=lppm)
        manager.update("t", "b", _records(2), lppm=lppm)
        manager.close()
        manager.close()  # idempotent
        assert len(list(Path(tmp_path).glob("flush-*.json"))) == 2
        assert manager.stats()["sessions_active"] == 0
        assert manager.stats()["flushes"] == 2
        with pytest.raises(RuntimeError, match="closed"):
            manager.update("t", "c", _records(1), lppm=lppm)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            SessionManager(max_sessions=0)
        with pytest.raises(ValueError):
            SessionManager(idle_ttl_s=0.0)
