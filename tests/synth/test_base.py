"""Tests of the path sampler and track builder."""

import numpy as np
import pytest

from repro.geo import LatLon, LocalProjection
from repro.synth import PathSampler, TrackBuilder

SF = LatLon(37.7749, -122.4194)


class TestPathSampler:
    def test_length_of_l_shape(self):
        sampler = PathSampler([(0, 0), (100, 0), (100, 50)])
        assert sampler.length_m == pytest.approx(150.0)

    def test_at_vertices_and_midpoints(self):
        sampler = PathSampler([(0, 0), (100, 0)])
        assert sampler.at(0.0) == (0.0, 0.0)
        assert sampler.at(50.0) == (50.0, 0.0)
        assert sampler.at(100.0) == (100.0, 0.0)

    def test_at_clamps_outside_range(self):
        sampler = PathSampler([(0, 0), (100, 0)])
        assert sampler.at(-10.0) == (0.0, 0.0)
        assert sampler.at(500.0) == (100.0, 0.0)

    def test_single_point_path(self):
        sampler = PathSampler([(7.0, -3.0)])
        assert sampler.length_m == 0.0
        assert sampler.at(123.0) == (7.0, -3.0)

    def test_zero_length_segments_tolerated(self):
        sampler = PathSampler([(0, 0), (0, 0), (10, 0)])
        assert sampler.at(5.0) == (5.0, 0.0)

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            PathSampler([])

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            PathSampler([(1, 2, 3)])


class TestTrackBuilder:
    def _builder(self, noise: float = 0.0) -> TrackBuilder:
        return TrackBuilder(
            user="t",
            projection=LocalProjection(SF),
            rng=np.random.default_rng(0),
            gps_noise_m=noise,
        )

    def test_dwell_emits_expected_fix_count(self):
        b = self._builder()
        b.dwell(0.0, 0.0, duration_s=300.0, interval_s=60.0)
        trace = b.build()
        assert len(trace) == 5
        assert b.now_s == 300.0

    def test_travel_advances_clock_by_path_time(self):
        b = self._builder()
        b.travel([(0, 0), (1000, 0)], speed_mps=10.0, interval_s=10.0)
        assert b.now_s == pytest.approx(100.0)
        assert len(b.build()) == 10

    def test_zero_noise_is_exact(self):
        b = self._builder(noise=0.0)
        b.dwell(500.0, -500.0, duration_s=60.0, interval_s=60.0)
        trace = b.build()
        proj = LocalProjection(SF)
        x, y = proj.to_xy(trace.lats, trace.lons)
        assert float(x[0]) == pytest.approx(500.0, abs=1e-6)
        assert float(y[0]) == pytest.approx(-500.0, abs=1e-6)

    def test_noise_perturbs_fixes(self):
        b = self._builder(noise=20.0)
        b.dwell(0.0, 0.0, duration_s=6000.0, interval_s=60.0)
        trace = b.build()
        proj = LocalProjection(SF)
        x, _ = proj.to_xy(trace.lats, trace.lons)
        assert np.std(x) == pytest.approx(20.0, rel=0.4)

    def test_skip_emits_nothing(self):
        b = self._builder()
        b.emit(0.0, 0.0)
        b.skip(3600.0)
        b.emit(0.0, 0.0)
        trace = b.build()
        assert len(trace) == 2
        assert trace.times_s[1] - trace.times_s[0] == pytest.approx(3600.0)

    def test_empty_build_rejected(self):
        with pytest.raises(ValueError):
            self._builder().build()

    def test_invalid_arguments_rejected(self):
        b = self._builder()
        with pytest.raises(ValueError):
            b.dwell(0, 0, duration_s=-1.0, interval_s=60.0)
        with pytest.raises(ValueError):
            b.travel([(0, 0), (1, 1)], speed_mps=0.0, interval_s=10.0)
        with pytest.raises(ValueError):
            b.skip(-5.0)
