"""Tests of the synthetic city model."""

import numpy as np
import pytest

from repro.synth import CityModel


@pytest.fixture
def city() -> CityModel:
    return CityModel(half_extent_m=2000.0, block_m=200.0)


class TestGeometry:
    def test_invalid_extents_rejected(self):
        with pytest.raises(ValueError):
            CityModel(half_extent_m=0.0)
        with pytest.raises(ValueError):
            CityModel(half_extent_m=100.0, block_m=200.0)

    def test_contains_and_clamp(self, city):
        assert city.contains_xy(0.0, 0.0)
        assert city.contains_xy(2000.0, -2000.0)
        assert not city.contains_xy(2001.0, 0.0)
        assert city.clamp_xy(9999.0, -9999.0) == (2000.0, -2000.0)

    def test_snap_to_intersection_multiples(self, city):
        x, y = city.snap_to_intersection(317.0, -489.0)
        assert x % city.block_m == 0
        assert y % city.block_m == 0
        assert abs(x - 317.0) <= city.block_m / 2
        assert abs(y - (-489.0)) <= city.block_m / 2

    def test_random_points_inside(self, city, rng):
        for _ in range(100):
            x, y = city.random_point(rng)
            assert city.contains_xy(x, y)

    def test_random_intersection_on_grid(self, city, rng):
        x, y = city.random_intersection(rng)
        assert x % city.block_m == 0
        assert y % city.block_m == 0


class TestRouting:
    def test_route_endpoints_preserved(self, city):
        a, b = (123.0, -456.0), (-789.0, 1011.0)
        route = city.street_route(a, b)
        assert route[0] == a
        assert route[-1] == b

    def test_route_segments_axis_aligned(self, city):
        route = city.street_route((123.0, -456.0), (-789.0, 1011.0))
        for (x1, y1), (x2, y2) in zip(route, route[1:]):
            assert x1 == x2 or y1 == y2, "diagonal leg in street route"

    def test_route_same_point_is_trivial(self, city):
        route = city.street_route((200.0, 200.0), (200.0, 200.0))
        assert route == [(200.0, 200.0)]

    def test_route_length_at_least_manhattan(self, city):
        a, b = (0.0, 0.0), (600.0, 800.0)
        route = city.street_route(a, b)
        length = sum(
            abs(x2 - x1) + abs(y2 - y1)
            for (x1, y1), (x2, y2) in zip(route, route[1:])
        )
        assert length >= abs(b[0] - a[0]) + abs(b[1] - a[1]) - 1e-9


class TestHotspots:
    def test_weights_normalised_and_descending(self, city, rng):
        locations, weights = city.hotspots(rng, n=10)
        assert locations.shape == (10, 2)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) <= 0)

    def test_hotspots_inside_city(self, city, rng):
        locations, _ = city.hotspots(rng, n=50)
        assert np.all(np.abs(locations) <= city.half_extent_m)

    def test_zero_hotspots_rejected(self, city, rng):
        with pytest.raises(ValueError):
            city.hotspots(rng, n=0)
