"""Tests of the synthetic workload generators."""

import numpy as np
import pytest

from repro.attacks import extract_pois
from repro.synth import (
    CommuterConfig,
    LevyFlightConfig,
    RandomWaypointConfig,
    TaxiFleetConfig,
    generate_commuters,
    generate_levy_flight,
    generate_random_waypoint,
    generate_taxi_fleet,
)


class TestTaxiFleet:
    def test_user_count_and_nonempty(self, taxi_dataset):
        assert len(taxi_dataset) == 6
        assert all(len(t) > 10 for t in taxi_dataset.traces)

    def test_deterministic_by_seed(self, small_city):
        cfg = TaxiFleetConfig(n_cabs=2, shift_hours=2.0, seed=42)
        a = generate_taxi_fleet(cfg, small_city)
        b = generate_taxi_fleet(cfg, small_city)
        for user in a.users:
            assert a[user] == b[user]

    def test_different_seeds_differ(self, small_city):
        a = generate_taxi_fleet(
            TaxiFleetConfig(n_cabs=1, shift_hours=2.0, seed=1), small_city
        )
        b = generate_taxi_fleet(
            TaxiFleetConfig(n_cabs=1, shift_hours=2.0, seed=2), small_city
        )
        assert a[a.users[0]] != b[b.users[0]]

    def test_cabs_have_pois(self, taxi_dataset):
        # Recurrent stand breaks must yield at least one POI for most cabs.
        with_pois = sum(
            1 for t in taxi_dataset.traces if len(extract_pois(t)) >= 1
        )
        assert with_pois >= len(taxi_dataset) - 1

    def test_traces_within_city(self, taxi_dataset, small_city):
        box = taxi_dataset.bbox()
        # City is ~2 km half-extent; allow GPS noise slack.
        assert box.width_m < 2 * small_city.half_extent_m + 500
        assert box.height_m < 2 * small_city.half_extent_m + 500

    def test_cadence_matches_config(self, small_city):
        ds = generate_taxi_fleet(
            TaxiFleetConfig(
                n_cabs=1, shift_hours=2.0, fix_interval_s=60.0, heterogeneity=0.0
            ),
            small_city,
        )
        intervals = np.diff(ds.traces[0].times_s)
        assert np.median(intervals) == pytest.approx(60.0, rel=0.1)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TaxiFleetConfig(n_cabs=0)
        with pytest.raises(ValueError):
            TaxiFleetConfig(stands_per_cab=0)
        with pytest.raises(ValueError):
            TaxiFleetConfig(break_every_fares=0)


class TestCommuters:
    def test_users_and_multiday(self, commuter_dataset):
        assert len(commuter_dataset) == 5
        for trace in commuter_dataset.traces:
            assert trace.duration_s > 86400.0  # spans several days

    def test_commuters_have_home_and_work_pois(self, commuter_dataset):
        for trace in commuter_dataset.traces:
            pois = extract_pois(trace)
            assert len(pois) >= 2, f"{trace.user} lacks home/work POIs"

    def test_recurrent_pois_across_days(self, commuter_dataset):
        # Home is visited every day: the top POI must have several visits.
        for trace in commuter_dataset.traces:
            top = extract_pois(trace)[0]
            assert top.n_visits >= 2

    def test_deterministic_by_seed(self):
        cfg = CommuterConfig(n_users=2, n_days=1, seed=3)
        a = generate_commuters(cfg)
        b = generate_commuters(cfg)
        for user in a.users:
            assert a[user] == b[user]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CommuterConfig(n_users=0)
        with pytest.raises(ValueError):
            CommuterConfig(leisure_probability=1.5)


class TestTextbookModels:
    def test_random_waypoint_runs(self, small_city):
        ds = generate_random_waypoint(
            RandomWaypointConfig(n_users=3, n_legs=5, seed=1), small_city
        )
        assert len(ds) == 3
        assert all(len(t) > 5 for t in ds.traces)

    def test_levy_flight_runs(self, small_city):
        ds = generate_levy_flight(
            LevyFlightConfig(n_users=3, n_legs=5, seed=1), small_city
        )
        assert len(ds) == 3

    def test_levy_steps_bounded_by_city(self, small_city):
        ds = generate_levy_flight(
            LevyFlightConfig(n_users=2, n_legs=20, seed=5), small_city
        )
        box = ds.bbox()
        assert box.width_m < 2 * small_city.half_extent_m + 500

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypointConfig(n_users=0)
        with pytest.raises(ValueError):
            LevyFlightConfig(alpha=1.0)
        with pytest.raises(ValueError):
            LevyFlightConfig(min_step_m=0.0)
