"""End-to-end tests of the command-line interface."""

import pytest

import repro
from repro.cli import build_parser, main
from repro.mobility import read_csv


@pytest.fixture
def taxi_csv(tmp_path):
    path = tmp_path / "taxi.csv"
    code = main(["generate", str(path), "--workload", "taxi", "--users", "3",
                 "--seed", "1"])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_lppm_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["protect", "in.csv", "out.csv", "--lppm", "nope"]
            )

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_invalid_engine_value_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["sweep", "in.csv", "--engine", "gpu"])
        assert excinfo.value.code == 2
        assert "--engine" in capsys.readouterr().err

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert (args.host, args.port) == ("127.0.0.1", 8080)
        assert args.engine == "auto"

    @pytest.mark.parametrize("port", ["99999", "-1", "http"])
    def test_serve_rejects_bad_ports(self, port, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["serve", "--port", port])
        assert excinfo.value.code == 2
        assert "port" in capsys.readouterr().err

    def test_serve_accepts_engine_options(self):
        args = build_parser().parse_args([
            "serve", "--host", "0.0.0.0", "--port", "0",
            "--engine", "serial", "--jobs", "2", "--cache-dir", "/tmp/c",
        ])
        assert args.port == 0
        assert args.jobs == 2

    def test_serve_worker_pool_options(self):
        args = build_parser().parse_args(["serve"])
        assert (args.workers, args.job_ttl, args.grace) == (2, 600.0, 10.0)
        args = build_parser().parse_args(
            ["serve", "--workers", "4", "--job-ttl", "30", "--grace", "2"]
        )
        assert (args.workers, args.job_ttl, args.grace) == (4, 30.0, 2.0)

    def test_serve_rejects_zero_workers(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["serve", "--workers", "0"])
        assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err

    def test_serve_processes_default_and_parse(self):
        assert build_parser().parse_args(["serve"]).processes == 1
        args = build_parser().parse_args(["serve", "--processes", "4"])
        assert args.processes == 4

    @pytest.mark.parametrize("value", ["0", "-2", "two"])
    def test_serve_rejects_bad_process_counts(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["serve", "--processes", value])
        assert excinfo.value.code == 2
        assert "--processes" in capsys.readouterr().err

    def test_job_submit_requires_a_body_source(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["job", "submit", "sweep"])
        assert excinfo.value.code == 2
        assert "--body" in capsys.readouterr().err

    def test_job_submit_rejects_unknown_endpoint(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["job", "submit", "protect", "--body", "{}"]
            )

    def test_job_subcommands_parse(self):
        args = build_parser().parse_args(
            ["job", "wait", "job-x-1", "--timeout", "5",
             "--url", "http://localhost:9"]
        )
        assert args.job_command == "wait"
        assert args.job_id == "job-x-1"
        assert args.timeout == 5.0
        assert build_parser().parse_args(["job", "list"]).job_command == \
            "list"


class TestErrorPaths:
    """Operator mistakes exit 2 with a message, never a traceback."""

    def test_missing_input_file(self, capsys):
        code = main(["stats", "/no/such/input.csv"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "input.csv" in err

    def test_missing_input_file_sweep(self, capsys):
        assert main(["sweep", "/no/such/file.csv"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_param_value(self, taxi_csv, tmp_path, capsys):
        code = main([
            "protect", str(taxi_csv), str(tmp_path / "out.csv"),
            "--lppm", "geo_ind", "--param", "-1.0",
        ])
        assert code == 2
        assert "epsilon" in capsys.readouterr().err

    def test_bad_param_value_subsampling(self, taxi_csv, tmp_path, capsys):
        code = main([
            "protect", str(taxi_csv), str(tmp_path / "out.csv"),
            "--lppm", "subsampling", "--param", "7.0",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_port_already_in_use(self, capsys):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        port = blocker.getsockname()[1]
        try:
            code = main(["serve", "--port", str(port)])
        finally:
            blocker.close()
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_broken_pipe_is_quiet_exit_1(self, monkeypatch, capsys):
        import repro.cli as cli_module

        monkeypatch.setattr(
            cli_module, "_cmd_list",
            lambda args: (_ for _ in ()).throw(BrokenPipeError()),
        )
        assert main(["list"]) == 1
        assert capsys.readouterr().err == ""

    def test_repro_debug_reraises(self, taxi_csv, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG", "1")
        with pytest.raises(ValueError):
            main(["protect", str(taxi_csv), str(tmp_path / "o.csv"),
                  "--param", "-1.0"])

    def test_unreadable_csv(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("not,a,valid,header\n1,2,3,4\n")
        assert main(["stats", str(bad)]) == 2
        assert "header" in capsys.readouterr().err


class TestGenerate:
    def test_taxi_csv_readable(self, taxi_csv):
        dataset = read_csv(taxi_csv)
        assert len(dataset) == 3
        assert dataset.n_records > 100

    def test_commuters(self, tmp_path, capsys):
        path = tmp_path / "commuters.csv"
        assert main(["generate", str(path), "--workload", "commuters",
                     "--users", "2"]) == 0
        assert len(read_csv(path)) == 2
        assert "wrote" in capsys.readouterr().out


class TestProtect:
    def test_geo_ind_protection(self, taxi_csv, tmp_path):
        out = tmp_path / "protected.csv"
        code = main([
            "protect", str(taxi_csv), str(out),
            "--lppm", "geo_ind", "--param", "0.01", "--seed", "3",
        ])
        assert code == 0
        original = read_csv(taxi_csv)
        protected = read_csv(out)
        assert protected.users == original.users
        user = original.users[0]
        assert protected[user].lats.tolist() != original[user].lats.tolist()

    def test_every_registered_lppm_usable(self, taxi_csv, tmp_path):
        # keep_fraction must be in (0,1]; 0.5 works for all mechanisms'
        # scale parameters too.
        for lppm in ("gaussian", "uniform_disk", "rounding", "subsampling",
                     "time_perturbation"):
            out = tmp_path / f"{lppm}.csv"
            assert main([
                "protect", str(taxi_csv), str(out), "--lppm", lppm,
                "--param", "0.5",
            ]) == 0


class TestAttack:
    def test_poi_table(self, taxi_csv, capsys):
        assert main(["attack", str(taxi_csv)]) == 0
        out = capsys.readouterr().out
        assert "POIs found" in out

    def test_with_protected_reports_retrieval_and_linking(
        self, taxi_csv, tmp_path, capsys
    ):
        protected = tmp_path / "protected.csv"
        main(["protect", str(taxi_csv), str(protected), "--param", "0.001"])
        capsys.readouterr()
        assert main(["attack", str(taxi_csv), "--protected", str(protected)]) == 0
        out = capsys.readouterr().out
        assert "POIs retrieved" in out
        assert "re-identification" in out

    def test_disjoint_users_fail(self, taxi_csv, tmp_path, capsys):
        other = tmp_path / "other.csv"
        main(["generate", str(other), "--workload", "commuters", "--users", "2"])
        capsys.readouterr()
        assert main(["attack", str(taxi_csv), "--protected", str(other)]) == 1


class TestAlp:
    def test_trajectory_printed(self, taxi_csv, capsys):
        code = main([
            "alp", str(taxi_csv), "--max-privacy", "0.9",
            "--min-utility", "0.05", "--start", "0.01",
        ])
        out = capsys.readouterr().out
        assert "epsilon" in out
        assert code == 0  # loose objectives converge immediately


class TestStatsAndList:
    def test_stats(self, taxi_csv, capsys):
        assert main(["stats", str(taxi_csv)]) == 0
        out = capsys.readouterr().out
        assert "radius of gyration" in out
        assert "n_users" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "geo_ind" in out
        assert "promesse" in out
        assert "poi_retrieval" in out


class TestSweepAndConfigure:
    def test_sweep_prints_series(self, taxi_csv, tmp_path, capsys):
        csv_out = tmp_path / "sweep.csv"
        code = main([
            "sweep", str(taxi_csv), "--points", "5", "--replications", "1",
            "--csv", str(csv_out),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "privacy" in out
        assert "paper: 0.84" in out
        assert csv_out.exists()

    def test_configure_reports_recommendation(self, taxi_csv, capsys):
        code = main([
            "configure", str(taxi_csv), "--points", "6", "--replications", "1",
            "--max-privacy", "0.5", "--min-utility", "0.1",
        ])
        out = capsys.readouterr().out
        assert "epsilon" in out
        assert code in (0, 1)  # feasibility depends on the tiny dataset


class TestJobCommand:
    """The ``repro-lppm job`` subcommands against a live daemon."""

    @pytest.fixture
    def daemon_url(self):
        import threading

        from repro.service import ConfigService

        app = ConfigService(workers=1)
        server = app.make_server("127.0.0.1", 0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield f"http://{host}:{port}"
        finally:
            server.shutdown()
            server.server_close()
            app.close()
            thread.join(timeout=5)

    def test_submit_wait_status_cancel_flow(self, daemon_url, capsys):
        import json

        body = json.dumps({
            "dataset": {"workload": "taxi", "users": 3, "seed": 4},
            "points": 4, "replications": 1,
        })
        assert main(["job", "submit", "sweep", "--body", body,
                     "--url", daemon_url]) == 0
        submitted = json.loads(capsys.readouterr().out)
        job_id = submitted["job_id"]

        assert main(["job", "wait", job_id, "--url", daemon_url]) == 0
        final = json.loads(capsys.readouterr().out)
        assert final["status"] == "done"
        assert len(final["result"]["points"]) == 4

        assert main(["job", "status", job_id, "--url", daemon_url]) == 0
        assert json.loads(capsys.readouterr().out)["status"] == "done"

        assert main(["job", "cancel", job_id, "--url", daemon_url]) == 0
        assert json.loads(capsys.readouterr().out)["status"] == "done"

        assert main(["job", "list", "--url", daemon_url]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["by_status"].get("done") == 1

    def test_submit_wait_inline(self, daemon_url, capsys):
        import json

        body = json.dumps({
            "dataset": {"workload": "taxi", "users": 3, "seed": 5},
            "points": 4, "replications": 1,
        })
        assert main(["job", "submit", "sweep", "--body", body, "--wait",
                     "--url", daemon_url]) == 0
        assert json.loads(capsys.readouterr().out)["status"] == "done"

    def test_submit_body_file(self, daemon_url, tmp_path, capsys):
        import json

        body_file = tmp_path / "body.json"
        body_file.write_text(json.dumps({
            "dataset": {"workload": "taxi", "users": 3, "seed": 6},
            "points": 4, "replications": 1,
        }))
        assert main(["job", "submit", "sweep",
                     "--body-file", str(body_file),
                     "--url", daemon_url]) == 0
        assert "job_id" in json.loads(capsys.readouterr().out)

    def test_submit_invalid_json_body_exits_2(self, daemon_url, capsys):
        assert main(["job", "submit", "sweep", "--body", "{nope",
                     "--url", daemon_url]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_rejected_body_is_typed_error_exit_2(self, daemon_url, capsys):
        assert main(["job", "submit", "sweep", "--body", "{}",
                     "--url", daemon_url]) == 2
        assert "invalid-request" in capsys.readouterr().err

    def test_unknown_job_exit_2(self, daemon_url, capsys):
        assert main(["job", "status", "job-nope-9",
                     "--url", daemon_url]) == 2
        assert "job-not-found" in capsys.readouterr().err

    def test_daemon_down_is_clean_error(self, capsys):
        assert main(["job", "list", "--url", "http://127.0.0.1:9"]) == 2
        assert "error:" in capsys.readouterr().err


class TestDatasetsCommand:
    """The ``repro-lppm datasets`` subcommands, local and over HTTP."""

    @pytest.fixture
    def daemon_url(self):
        import threading

        from repro.service import ConfigService

        app = ConfigService(workers=1)
        server = app.make_server("127.0.0.1", 0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield f"http://{host}:{port}"
        finally:
            server.shutdown()
            server.server_close()
            app.close()
            thread.join(timeout=5)

    def test_list_shows_builtins(self, capsys):
        assert main(["datasets", "list"]) == 0
        out = capsys.readouterr().out
        assert "taxi-small" in out and "commuters" in out

    def test_list_json(self, capsys):
        import json

        assert main(["datasets", "list", "--json"]) == 0
        names = [s["name"]
                 for s in json.loads(capsys.readouterr().out)["scenarios"]]
        assert "taxi" in names and "levy_flight" in names

    def test_show_known(self, capsys):
        assert main(["datasets", "show", "taxi-small"]) == 0
        out = capsys.readouterr().out
        assert "taxi-small" in out and '"users": 5' in out

    def test_show_unknown_exit_2(self, capsys):
        assert main(["datasets", "show", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_show_resolve_rejected_with_url(self, capsys):
        # --resolve is local-only: a daemon's spec may name paths that
        # exist only on the server.
        assert main(["datasets", "show", "taxi-small", "--resolve",
                     "--url", "http://127.0.0.1:9"]) == 2
        assert "local-only" in capsys.readouterr().err

    def test_show_resolve_reports_shape(self, capsys):
        import json

        assert main(["datasets", "show", "commuters-small",
                     "--resolve", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["users"] == 5
        assert payload["records"] > 0
        assert len(payload["fingerprint"]) == 64

    def test_register_local_dry_run(self, capsys):
        assert main(["datasets", "register", "cli-test-reg",
                     "--kind", "taxi",
                     "--params", '{"users": 2, "seed": 3}',
                     "--replace"]) == 0
        assert "2 users" in capsys.readouterr().out

    def test_register_invalid_params_exit_2(self, capsys):
        assert main(["datasets", "register", "x", "--kind", "taxi",
                     "--params", "{nope"]) == 2
        assert "not valid JSON" in capsys.readouterr().err
        assert main(["datasets", "register", "x", "--kind", "taxi",
                     "--params", '{"bogus": 1}']) == 2
        assert "bogus" in capsys.readouterr().err

    def test_register_file_backed_local(self, taxi_csv, capsys):
        import json

        assert main(["datasets", "register", "cli-csv-reg",
                     "--kind", "csv",
                     "--params", json.dumps({"path": str(taxi_csv)}),
                     "--replace", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["users"] == 3

    def test_register_and_list_on_daemon(self, daemon_url, capsys):
        import json

        assert main(["datasets", "register", "daemon-reg",
                     "--kind", "taxi", "--params", '{"users": 2}',
                     "--url", daemon_url]) == 0
        assert "registered" in capsys.readouterr().out
        assert main(["datasets", "list", "--url", daemon_url,
                     "--json"]) == 0
        names = [s["name"]
                 for s in json.loads(capsys.readouterr().out)["scenarios"]]
        assert "daemon-reg" in names
        assert main(["datasets", "show", "daemon-reg",
                     "--url", daemon_url]) == 0
        assert "daemon-reg" in capsys.readouterr().out

    def test_daemon_conflict_exit_2(self, daemon_url, capsys):
        assert main(["datasets", "register", "dup", "--kind", "taxi",
                     "--params", '{"users": 2}', "--url", daemon_url]) == 0
        capsys.readouterr()
        assert main(["datasets", "register", "dup", "--kind", "taxi",
                     "--params", '{"users": 3}', "--url", daemon_url]) == 2
        assert "scenario-exists" in capsys.readouterr().err
