"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.mobility import read_csv


@pytest.fixture
def taxi_csv(tmp_path):
    path = tmp_path / "taxi.csv"
    code = main(["generate", str(path), "--workload", "taxi", "--users", "3",
                 "--seed", "1"])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_lppm_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["protect", "in.csv", "out.csv", "--lppm", "nope"]
            )


class TestGenerate:
    def test_taxi_csv_readable(self, taxi_csv):
        dataset = read_csv(taxi_csv)
        assert len(dataset) == 3
        assert dataset.n_records > 100

    def test_commuters(self, tmp_path, capsys):
        path = tmp_path / "commuters.csv"
        assert main(["generate", str(path), "--workload", "commuters",
                     "--users", "2"]) == 0
        assert len(read_csv(path)) == 2
        assert "wrote" in capsys.readouterr().out


class TestProtect:
    def test_geo_ind_protection(self, taxi_csv, tmp_path):
        out = tmp_path / "protected.csv"
        code = main([
            "protect", str(taxi_csv), str(out),
            "--lppm", "geo_ind", "--param", "0.01", "--seed", "3",
        ])
        assert code == 0
        original = read_csv(taxi_csv)
        protected = read_csv(out)
        assert protected.users == original.users
        user = original.users[0]
        assert protected[user].lats.tolist() != original[user].lats.tolist()

    def test_every_registered_lppm_usable(self, taxi_csv, tmp_path):
        # keep_fraction must be in (0,1]; 0.5 works for all mechanisms'
        # scale parameters too.
        for lppm in ("gaussian", "uniform_disk", "rounding", "subsampling",
                     "time_perturbation"):
            out = tmp_path / f"{lppm}.csv"
            assert main([
                "protect", str(taxi_csv), str(out), "--lppm", lppm,
                "--param", "0.5",
            ]) == 0


class TestAttack:
    def test_poi_table(self, taxi_csv, capsys):
        assert main(["attack", str(taxi_csv)]) == 0
        out = capsys.readouterr().out
        assert "POIs found" in out

    def test_with_protected_reports_retrieval_and_linking(
        self, taxi_csv, tmp_path, capsys
    ):
        protected = tmp_path / "protected.csv"
        main(["protect", str(taxi_csv), str(protected), "--param", "0.001"])
        capsys.readouterr()
        assert main(["attack", str(taxi_csv), "--protected", str(protected)]) == 0
        out = capsys.readouterr().out
        assert "POIs retrieved" in out
        assert "re-identification" in out

    def test_disjoint_users_fail(self, taxi_csv, tmp_path, capsys):
        other = tmp_path / "other.csv"
        main(["generate", str(other), "--workload", "commuters", "--users", "2"])
        capsys.readouterr()
        assert main(["attack", str(taxi_csv), "--protected", str(other)]) == 1


class TestAlp:
    def test_trajectory_printed(self, taxi_csv, capsys):
        code = main([
            "alp", str(taxi_csv), "--max-privacy", "0.9",
            "--min-utility", "0.05", "--start", "0.01",
        ])
        out = capsys.readouterr().out
        assert "epsilon" in out
        assert code == 0  # loose objectives converge immediately


class TestStatsAndList:
    def test_stats(self, taxi_csv, capsys):
        assert main(["stats", str(taxi_csv)]) == 0
        out = capsys.readouterr().out
        assert "radius of gyration" in out
        assert "n_users" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "geo_ind" in out
        assert "promesse" in out
        assert "poi_retrieval" in out


class TestSweepAndConfigure:
    def test_sweep_prints_series(self, taxi_csv, tmp_path, capsys):
        csv_out = tmp_path / "sweep.csv"
        code = main([
            "sweep", str(taxi_csv), "--points", "5", "--replications", "1",
            "--csv", str(csv_out),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "privacy" in out
        assert "paper: 0.84" in out
        assert csv_out.exists()

    def test_configure_reports_recommendation(self, taxi_csv, capsys):
        code = main([
            "configure", str(taxi_csv), "--points", "6", "--replications", "1",
            "--max-privacy", "0.5", "--min-utility", "0.1",
        ])
        out = capsys.readouterr().out
        assert "epsilon" in out
        assert code in (0, 1)  # feasibility depends on the tiny dataset
