"""The docs tree stays coherent: pages exist and intra-repo links resolve."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs_links", REPO_ROOT / "tools" / "check_docs_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_expected_docs_pages_present():
    for page in ("architecture.md", "paper-map.md", "service.md"):
        assert (REPO_ROOT / "docs" / page).is_file(), f"missing docs/{page}"


def test_readme_links_every_docs_page():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for page in sorted((REPO_ROOT / "docs").glob("*.md")):
        assert f"docs/{page.name}" in readme, \
            f"README does not link docs/{page.name}"


def test_all_intra_repo_markdown_links_resolve():
    checker = _load_checker()
    problems = checker.broken_links(REPO_ROOT)
    assert problems == [], "\n".join(
        f"{f.relative_to(REPO_ROOT)} -> {t}" for f, t in problems
    )


def test_checker_flags_broken_links(tmp_path):
    (tmp_path / "page.md").write_text(
        "[ok](other.md) [bad](missing.md) [ext](https://example.com) "
        "[anchor](#here)\n"
    )
    (tmp_path / "other.md").write_text("hello\n")
    checker = _load_checker()
    problems = checker.broken_links(tmp_path)
    assert [(f.name, t) for f, t in problems] == [("page.md", "missing.md")]
