"""Smoke tests of the example scripts.

Each example must at least import cleanly (so they cannot rot as the
API evolves), and the fast ones are executed end to end.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_expected_examples_present():
    for required in (
        "quickstart",
        "configure_geoi",
        "compare_lppms",
        "taxi_fleet_study",
        "alp_vs_model",
        "metric_modularity",
        "transfer_across_datasets",
        "production_workflow",
        "service_quickstart",
    ):
        assert required in ALL_EXAMPLES, f"missing example {required}.py"


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_imports_cleanly(name):
    module = _load(name)
    assert callable(getattr(module, "main", None)), f"{name} lacks a main()"
    assert module.__doc__, f"{name} lacks a module docstring"


def test_quickstart_runs(capsys):
    module = _load("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "privacy metric" in out
    assert "utility metric" in out
