"""End-to-end reproduction of the paper's pipeline on synthetic data.

These are the slowest tests in the suite: they run the full three-step
framework (define -> model -> configure) on a real GEO-I sweep, exactly
as the benchmarks do, just at reduced resolution.
"""

import numpy as np
import pytest

from repro import (
    Configurator,
    GeoIndistinguishability,
    Objective,
    TaxiFleetConfig,
    generate_taxi_fleet,
    geo_ind_system,
)


@pytest.fixture(scope="module")
def configurator():
    dataset = generate_taxi_fleet(
        TaxiFleetConfig(n_cabs=10, shift_hours=8.0, seed=11)
    )
    c = Configurator(geo_ind_system(), dataset, n_points=16, n_replications=2)
    c.fit()
    return c


class TestPaperPipeline:
    def test_figure1a_shape(self, configurator):
        """Privacy rises from ~0 to a saturation plateau as eps grows."""
        privacy = configurator.sweep.privacy()
        assert privacy[0] <= 0.05
        assert privacy[-1] >= 0.6
        # Non-decreasing up to sweep noise.
        assert np.all(np.diff(privacy) >= -0.15)

    def test_figure1b_shape(self, configurator):
        """Utility rises over a much wider eps band than privacy."""
        eps = configurator.sweep.param_values()
        utility = configurator.sweep.utility()
        assert utility[0] < 0.3
        assert utility[-1] > 0.9
        assert np.all(np.diff(utility) >= -0.1)
        # Privacy's active band is narrower than utility's.
        pr_region = configurator.model.privacy_region
        ut_region = configurator.model.utility_region
        pr_span = np.log(eps[pr_region.stop] / eps[pr_region.start])
        ut_span = np.log(eps[ut_region.stop] / eps[ut_region.start])
        assert pr_span < ut_span

    def test_equation2_signs_and_fit(self, configurator):
        a, b, alpha, beta = configurator.model.coefficients
        assert b > 0, "privacy must grow with eps"
        assert beta > 0, "utility must grow with eps"
        assert configurator.model.privacy.r2 > 0.7
        assert configurator.model.utility.r2 > 0.8

    def test_headline_configuration(self, configurator):
        """Pr <= 0.1 and Ut >= 0.8 must be jointly feasible, as in §2."""
        rec = configurator.recommend([
            Objective("privacy", "<=", 0.1),
            Objective("utility", ">=", 0.8),
        ])
        assert rec.feasible, rec.notes
        # The paper lands on eps ~ 0.01; accept the right order of magnitude.
        assert 1e-3 <= rec.value <= 0.1

    def test_recommendation_verifies(self, configurator):
        rec = configurator.recommend([
            Objective("privacy", "<=", 0.1),
            Objective("utility", ">=", 0.8),
        ])
        measured_pr, measured_ut = configurator.verify(rec, n_replications=2)
        # Model error tolerance: metrics within 0.15 of the objectives.
        assert measured_pr <= 0.1 + 0.15
        assert measured_ut >= 0.8 - 0.15

    def test_recommended_lppm_is_deployable(self, configurator):
        rec = configurator.recommend([Objective("privacy", "<=", 0.2)])
        lppm = configurator.system.make_lppm(epsilon=rec.value)
        assert isinstance(lppm, GeoIndistinguishability)
