"""Cross-cutting invariants, enforced for *every* registered component.

These tests iterate the LPPM and metric registries so that any future
mechanism or metric automatically inherits the library's contracts:
protected traces stay well-formed, bounded metrics stay in [0, 1], and
identity-like comparisons behave.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lppm import available_lppms, lppm_class
from repro.metrics import available_metrics, metric_class

#: A mid-range, always-valid parameter per mechanism.
LPPM_MID_PARAMS = {
    "geo_ind": {"epsilon": 0.01},
    "elastic_geo_ind": {"epsilon": 0.01},
    "gaussian": {"sigma_m": 200.0},
    "uniform_disk": {"radius_m": 200.0},
    "rounding": {"cell_size_m": 200.0},
    "subsampling": {"keep_fraction": 0.5},
    "time_perturbation": {"sigma_s": 120.0},
    "promesse": {"alpha_m": 100.0},
}

#: Metrics whose range is the unit interval.
UNIT_METRICS = (
    "poi_retrieval",
    "reidentification",
    "home_identification",
    "area_coverage",
    "same_cell",
    "spatial_distortion",
    "trajectory_shape",
    "heatmap",
    "range_query",
    "time_preservation",
)


def test_every_registered_lppm_has_mid_params():
    missing = set(available_lppms()) - set(LPPM_MID_PARAMS)
    assert not missing, f"add mid-range params for {sorted(missing)}"


def test_every_unit_metric_is_registered():
    missing = set(UNIT_METRICS) - set(available_metrics())
    assert not missing


@pytest.mark.parametrize("name", sorted(LPPM_MID_PARAMS))
def test_protected_traces_are_well_formed(name, taxi_dataset):
    lppm = lppm_class(name)(**LPPM_MID_PARAMS[name])
    protected = lppm.protect(taxi_dataset, seed=0)
    assert protected.users == taxi_dataset.users
    for user in protected.users:
        trace = protected[user]
        assert trace.user == user
        assert len(trace) > 0, f"{name} emptied {user}'s trace"
        assert np.all(np.diff(trace.times_s) >= 0)
        assert np.all(np.abs(trace.lats) <= 90.0)
        assert np.all(np.abs(trace.lons) <= 180.0)
        assert np.all(np.isfinite(trace.lats))
        assert np.all(np.isfinite(trace.lons))


@pytest.mark.parametrize("name", sorted(LPPM_MID_PARAMS))
def test_protection_is_reproducible(name, taxi_dataset):
    lppm = lppm_class(name)(**LPPM_MID_PARAMS[name])
    small = taxi_dataset.subset(taxi_dataset.users[:2])
    a = lppm.protect(small, seed=42)
    b = lppm.protect(small, seed=42)
    for user in small.users:
        assert a[user] == b[user], f"{name} is not seed-deterministic"


@pytest.mark.parametrize("name", UNIT_METRICS)
def test_unit_metrics_bounded_under_protection(name, taxi_dataset):
    metric = metric_class(name)()
    from repro.lppm import GeoIndistinguishability

    protected = GeoIndistinguishability(0.005).protect(taxi_dataset, seed=0)
    value = metric.evaluate(taxi_dataset, protected)
    assert 0.0 <= value <= 1.0, f"{name} left the unit interval: {value}"


@pytest.mark.parametrize(
    "name",
    [n for n in UNIT_METRICS if n not in ("reidentification",)],
)
def test_utility_like_metrics_max_out_on_identity(name, taxi_dataset):
    metric = metric_class(name)()
    value = metric.evaluate(taxi_dataset, taxi_dataset)
    if metric.kind == "utility":
        assert value == pytest.approx(1.0), f"{name} identity != 1"
    else:
        # Privacy exposure metrics are maximal on unprotected data
        # (for users carrying evidence).
        assert value >= 0.9, f"{name} identity exposure suspiciously low"


@given(st.floats(min_value=1e-4, max_value=1.0))
@settings(max_examples=15, deadline=None)
def test_geo_ind_valid_over_full_paper_range(eps):
    from repro.lppm import GeoIndistinguishability
    from repro.mobility import Trace

    trace = Trace(
        "u", np.arange(20.0) * 60.0, np.full(20, 37.77), np.full(20, -122.42)
    )
    out = GeoIndistinguishability(eps).protect_trace(
        trace, np.random.default_rng(0)
    )
    assert np.all(np.isfinite(out.lats))
    assert np.all(np.abs(out.lats) <= 90.0)
