#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve.

Scans every ``*.md`` file in the repository (skipping hidden and cache
directories), extracts inline ``[text](target)`` links, and verifies
that each *relative* target exists on disk, resolved against the file
that contains it.  External links (``http(s)://``, ``mailto:``) and
pure in-page anchors (``#section``) are ignored; a relative target's
``#anchor`` suffix is stripped before the existence check.

Exit status 0 when every link resolves, 1 otherwise (broken links are
listed one per line).  CI runs this as the docs job.

Run:  python tools/check_docs_links.py [repo-root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

# Inline links only; reference-style links are not used in this repo.
# The target group stops at the first unescaped ')' — good enough for
# plain file paths, which is all intra-repo links should be.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}
_EXTERNAL = ("http://", "https://", "mailto:")


def iter_markdown_files(root: Path) -> List[Path]:
    files = []
    for path in sorted(root.rglob("*.md")):
        if any(part in _SKIP_DIRS or part.startswith(".")
               for part in path.relative_to(root).parts[:-1]):
            continue
        files.append(path)
    return files


def broken_links(root: Path) -> List[Tuple[Path, str]]:
    """(file, target) pairs whose relative targets do not resolve."""
    broken = []
    for md_file in iter_markdown_files(root):
        text = md_file.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if path_part.startswith("/"):
                resolved = root / path_part.lstrip("/")
            else:
                resolved = md_file.parent / path_part
            if not resolved.exists():
                broken.append((md_file, target))
    return broken


def main(argv: List[str] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    files = iter_markdown_files(root)
    problems = broken_links(root)
    for md_file, target in problems:
        print(f"{md_file.relative_to(root)}: broken link -> {target}")
    print(f"checked {len(files)} markdown files: "
          f"{'all links resolve' if not problems else f'{len(problems)} broken'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
