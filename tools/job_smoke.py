#!/usr/bin/env python3
"""Job-lifecycle smoke test against a real ``repro-lppm serve`` daemon.

Spawns the daemon as a subprocess (``python -m repro.cli serve``) with
an ``--api-keys`` file, then exercises the async-job surface end to
end over real sockets — every request carrying ``X-API-Key``:

1. **auth gate** — a keyless request is a typed 401 while ``/healthz``
   stays open, and the keyed client is served;
2. **submit → poll → result** — a sweep job runs to ``done`` and its
   result matches what the sync endpoint returns for the same body;
3. **responsiveness under load** — while a second sweep job is
   running, ``GET /healthz`` and ``GET /jobs/<id>`` answer fast;
4. **cancel** — a running job cancelled mid-sweep reaches
   ``cancelled`` without a result;
5. **clean shutdown** — SIGTERM drains the daemon and it exits 0.

Exit status 0 when every step passes; a JSON summary (``--json``) is
written for CI artifacts either way.  CI runs this in the smoke job.

Run:  PYTHONPATH=src python tools/job_smoke.py [--json out.json]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import HttpServiceClient, ServiceClientError  # noqa: E402

_LISTENING = re.compile(r"listening on (http://[\d.]+:\d+)")

SMOKE_KEY = "smoke-ci-key"
SMOKE_TENANT = "smoke"


def start_daemon(
    workers: int, api_keys_path: str
) -> "tuple[subprocess.Popen, str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src")
        + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--workers", str(workers), "--grace", "5",
         "--api-keys", api_keys_path],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = _LISTENING.search(line)
        if match:
            return process, match.group(1)
    process.kill()
    raise SystemExit("FAIL: daemon never announced its address")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write a JSON summary to this file")
    parser.add_argument("--workers", type=int, default=1,
                        help="daemon job workers (default 1: makes the "
                             "responsiveness check adversarial)")
    args = parser.parse_args()

    summary: dict = {"steps": {}, "ok": False}
    with tempfile.NamedTemporaryFile(
        "w", suffix=".keys", delete=False
    ) as keyfile:
        keyfile.write(f"# job-smoke credentials\n{SMOKE_KEY}:{SMOKE_TENANT}\n")
        api_keys_path = keyfile.name
    process, base_url = start_daemon(args.workers, api_keys_path)
    client = HttpServiceClient(base_url, timeout_s=30.0, api_key=SMOKE_KEY)
    print(f"daemon up at {base_url} (pid {process.pid}, keyed)")

    try:
        # -- 0. the auth gate is really on ----------------------------
        anonymous = HttpServiceClient(base_url, timeout_s=30.0)
        assert anonymous.healthz()["status"] == "ok"
        try:
            anonymous.jobs()
        except ServiceClientError as exc:
            assert exc.status == 401 and exc.code == "missing-api-key", exc
        else:
            raise AssertionError("keyless request was not denied")
        assert client.jobs()["tracked"] == 0
        summary["steps"]["auth"] = {"ok": True, "tenant": SMOKE_TENANT}
        print("auth: keyless denied with 401, /healthz open, "
              "keyed client served")

        # -- 1. submit → poll → result --------------------------------
        body = {"dataset": {"workload": "taxi", "users": 4, "seed": 7},
                "points": 5, "replications": 1}
        started = time.perf_counter()
        job = client.submit("sweep", body)
        assert job["status"] == "queued", job
        final = client.wait(job["job_id"], timeout_s=120.0)
        elapsed = time.perf_counter() - started
        assert final["status"] == "done", final
        result = final["result"]
        assert result["param"] == "epsilon" and len(result["points"]) == 5
        progress = final["progress"]
        assert progress["completed"] == progress["total"] > 0, progress
        sync = client.sweep(**{"dataset": body["dataset"]},
                            points=5, replications=1)
        assert [p["epsilon"] for p in sync["points"]] == \
            [p["epsilon"] for p in result["points"]]
        summary["steps"]["lifecycle"] = {
            "ok": True, "wall_s": round(elapsed, 3),
            "progress": progress,
        }
        print(f"lifecycle: done in {elapsed:.2f}s, "
              f"progress {progress['completed']}/{progress['total']}")

        # -- 2. responsiveness while a job runs -----------------------
        # Big enough (120 evaluations) that it cannot finish before
        # the probes below and the cancel in step 3 land.
        slow = client.submit("sweep", {
            "dataset": {"workload": "taxi", "users": 8, "seed": 8},
            "points": 30, "replications": 4,
        })
        probes = []
        for _ in range(10):
            t0 = time.perf_counter()
            client.healthz()
            client.status(slow["job_id"])
            probes.append((time.perf_counter() - t0) / 2)
        worst_ms = max(probes) * 1000.0
        summary["steps"]["responsiveness"] = {
            "ok": worst_ms < 250.0, "worst_probe_ms": round(worst_ms, 2),
        }
        assert worst_ms < 250.0, f"probes too slow: {worst_ms:.1f} ms"
        print(f"responsiveness: worst healthz/status probe "
              f"{worst_ms:.1f} ms while sweeping")

        # -- 3. cancel mid-sweep --------------------------------------
        cancelled = client.cancel(slow["job_id"])
        assert cancelled["cancel_requested"] is True
        final = client.wait(slow["job_id"], timeout_s=120.0)
        assert final["status"] == "cancelled", final
        assert "result" not in final
        summary["steps"]["cancel"] = {"ok": True,
                                      "progress": final["progress"]}
        print(f"cancel: job stopped at "
              f"{final['progress']['completed']}"
              f"/{final['progress']['total']} engine jobs")

        # -- 4. SIGTERM drains and exits 0 ----------------------------
        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=30.0)
        summary["steps"]["sigterm"] = {"ok": returncode == 0,
                                       "returncode": returncode}
        assert returncode == 0, f"daemon exited {returncode} on SIGTERM"
        print("sigterm: daemon drained and exited 0")

        summary["ok"] = True
        print("\njob smoke: all steps passed")
        return 0
    except (AssertionError, ServiceClientError, TimeoutError) as exc:
        summary["error"] = str(exc)
        print(f"\nFAIL: {exc}", file=sys.stderr)
        return 1
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)
        os.unlink(api_keys_path)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(summary, fh, indent=2, sort_keys=True)
            print(f"summary written to {args.json}")


if __name__ == "__main__":
    sys.exit(main())
