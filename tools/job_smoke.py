#!/usr/bin/env python3
"""Job-lifecycle smoke test against a real ``repro-lppm serve`` daemon.

Spawns the daemon as a subprocess (``python -m repro.cli serve``) with
an ``--api-keys`` file, then exercises the async-job surface end to
end over real sockets — every request carrying ``X-API-Key``:

1. **auth gate** — a keyless request is a typed 401 while ``/healthz``
   stays open, and the keyed client is served;
2. **submit → poll → result** — a sweep job runs to ``done`` and its
   result matches what the sync endpoint returns for the same body;
3. **responsiveness under load** — while a second sweep job is
   running, ``GET /healthz`` and ``GET /jobs/<id>`` answer fast;
4. **cancel** — a running job cancelled mid-sweep reaches
   ``cancelled`` without a result;
5. **stream replay** — a trace pushed chunk by chunk through
   ``POST /stream/<session>`` accumulates server-side, reports
   sliding-window metrics, and closes with final numbers (a second
   close is a typed 404);
6. **clean shutdown** — SIGTERM drains the daemon and it exits 0.

With ``--processes N`` (N > 1) the daemon boots in pre-fork mode and
two extra steps prove the fleet behaves like one service:

7. **fleet** — repeated ``/healthz`` probes observe at least two
   distinct ``X-Worker-Pid`` values;
8. **cross-worker warmth** — a sweep primed on one worker is answered
   as a response-cache **hit** (``X-Response-Cache: hit``, zero new
   engine executions, bit-identical body) by a *different* worker, and
   a job submitted to one worker is polled to ``done`` through
   another via the shared job store.

With ``--fault-spec {worker-crash,disk-full}`` the tool runs a *chaos*
profile instead: the daemon boots with injected faults and the steps
pin degraded-but-correct behaviour end to end —

* **worker-crash** — ``pool.crash:1`` kills a process-pool worker mid
  sweep; the job must still reach ``done`` with a payload bit-identical
  to an immediate fault-free repeat, and ``/metrics`` must record the
  ``pool.rebuilt`` degradation event;
* **disk-full** — every ``write_json_atomic`` fails with ``ENOSPC``;
  every request must keep answering 2xx while the tier circuit
  breakers open, ``/healthz`` flips to ``degraded`` and ``/metrics``
  carries the breaker states.

``--events-log PATH`` captures the daemon's output (the degradation
event log) plus the final resilience metrics — CI uploads it as an
artifact.

Exit status 0 when every step passes; a JSON summary (``--json``) is
written for CI artifacts either way.  CI runs this in the smoke job.

Run:  PYTHONPATH=src python tools/job_smoke.py [--json out.json]
      PYTHONPATH=src python tools/job_smoke.py --processes 2
      PYTHONPATH=src python tools/job_smoke.py --processes 2 \\
          --fault-spec worker-crash --events-log chaos.log
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import HttpServiceClient, ServiceClientError  # noqa: E402

_LISTENING = re.compile(r"listening on (http://[\d.]+:\d+)")

SMOKE_KEY = "smoke-ci-key"
SMOKE_TENANT = "smoke"

# Named chaos profiles: what --fault-spec accepts, mapped to the raw
# injector spec the daemon boots with.
FAULT_PROFILES = {
    "worker-crash": "pool.crash:1",
    "disk-full": "disk.write:500",
}


def start_daemon(
    workers: int,
    api_keys_path: str,
    processes: int = 1,
    extra_args: "tuple[str, ...]" = (),
) -> "tuple[subprocess.Popen, str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src")
        + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    )
    command = [sys.executable, "-m", "repro.cli", "serve",
               "--port", "0", "--workers", str(workers), "--grace", "5",
               "--api-keys", api_keys_path]
    if processes > 1:
        command += ["--processes", str(processes)]
    command += list(extra_args)
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = _LISTENING.search(line)
        if match:
            return process, match.group(1)
    process.kill()
    raise SystemExit("FAIL: daemon never announced its address")


def _poll_resilience(client, predicate, timeout_s: float = 60.0):
    """Poll ``/metrics`` until the resilience block satisfies
    ``predicate``.  Pre-fork workers keep per-process counters and the
    kernel spreads fresh connections across them, so repeated probes
    eventually land on the worker that lived through the fault.
    """
    deadline = time.monotonic() + timeout_s
    last = {}
    while time.monotonic() < deadline:
        last = client.metrics().get("resilience", {})
        if predicate(last):
            return last
        time.sleep(0.2)
    return None


def run_chaos(args: argparse.Namespace) -> int:
    spec = FAULT_PROFILES[args.fault_spec]
    summary: dict = {
        "profile": args.fault_spec, "fault_spec": spec,
        "processes": args.processes, "steps": {}, "ok": False,
    }
    extra = ["--fault-spec", spec]
    cache_dir = None
    if args.fault_spec == "worker-crash":
        # The crash only bites a process pool: force the engine onto
        # one with a small enough chunking that the sweep spans it.
        extra += ["--engine", "process", "--jobs", "2"]
    else:
        cache_dir = tempfile.mkdtemp(prefix="chaos-cache-")
        extra += ["--cache-dir", cache_dir]

    with tempfile.NamedTemporaryFile(
        "w", suffix=".keys", delete=False
    ) as keyfile:
        keyfile.write(f"# chaos credentials\n{SMOKE_KEY}:{SMOKE_TENANT}\n")
        api_keys_path = keyfile.name
    process, base_url = start_daemon(
        args.workers, api_keys_path,
        processes=args.processes, extra_args=tuple(extra),
    )
    client = HttpServiceClient(base_url, timeout_s=60.0, api_key=SMOKE_KEY)
    print(f"chaos daemon up at {base_url} (pid {process.pid}, "
          f"profile {args.fault_spec!r} = {spec!r}, "
          f"{args.processes} process(es))")

    resilience = None
    try:
        if args.fault_spec == "worker-crash":
            # -- a pool worker dies mid-sweep; the answer is unharmed -
            body = {"dataset": {"workload": "taxi", "users": 4, "seed": 7},
                    "points": 5, "replications": 1}
            job = client.submit("sweep", body)
            final = client.wait(job["job_id"], timeout_s=180.0)
            assert final["status"] == "done", final
            crashed = final["result"]
            assert len(crashed["points"]) == 5, crashed
            # The fault fired and consumed itself: an immediate repeat
            # is fault-free and must be bit-identical.
            repeat = client.sweep(dataset=body["dataset"],
                                  points=5, replications=1)
            assert repeat["points"] == crashed["points"], (
                "sweep through the crashed pool diverged from the "
                "fault-free repeat"
            )
            resilience = _poll_resilience(
                client,
                lambda r: r.get("events", {}).get("pool.rebuilt", 0) >= 1,
            )
            assert resilience is not None, (
                "no worker reported a pool.rebuilt degradation event"
            )
            assert resilience["faults"]["fired"].get("pool.crash", 0) >= 1
            summary["steps"]["worker_crash"] = {
                "ok": True,
                "pool_rebuilt_events":
                    resilience["events"]["pool.rebuilt"],
                "result_identical": True,
            }
            print("worker-crash: pool worker killed mid-sweep, batch "
                  "replayed on a rebuilt pool, payload bit-identical "
                  "to the fault-free repeat")
        else:
            # -- every disk write fails; not one request may 5xx ------
            sweeps, health = 0, None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                result = client.sweep(
                    dataset={"workload": "taxi", "users": 3,
                             "seed": sweeps},
                    points=2, replications=1,
                )
                assert len(result["points"]) == 2, result
                sweeps += 1
                probe = client.healthz()
                if probe["status"] == "degraded" and probe["degraded"]:
                    health = probe
                    break
            assert health is not None, (
                f"healthz never reported degradation after {sweeps} "
                "sweeps on a dead disk"
            )
            resilience = _poll_resilience(
                client,
                lambda r: any(
                    snap.get("state") == "open"
                    for snap in r.get("breakers", {}).values()
                ),
            )
            assert resilience is not None, "no breaker opened"
            open_tiers = sorted(
                tier for tier, snap in resilience["breakers"].items()
                if snap["state"] == "open"
            )
            summary["steps"]["disk_full"] = {
                "ok": True, "sweeps_all_2xx": sweeps,
                "degraded": health["degraded"],
                "open_breakers": open_tiers,
            }
            print(f"disk-full: {sweeps} sweeps all answered 2xx on a "
                  f"dead disk; degraded tiers {health['degraded']}, "
                  f"open breakers {open_tiers}")

        # -- SIGTERM still drains a degraded daemon -------------------
        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=30.0)
        summary["steps"]["sigterm"] = {"ok": returncode == 0,
                                       "returncode": returncode}
        assert returncode == 0, f"daemon exited {returncode} on SIGTERM"
        print("sigterm: degraded daemon drained and exited 0")

        summary["ok"] = True
        print(f"\nchaos smoke [{args.fault_spec}]: all steps passed")
        return 0
    except (AssertionError, ServiceClientError, TimeoutError) as exc:
        summary["error"] = str(exc)
        print(f"\nFAIL: {exc}", file=sys.stderr)
        return 1
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)
        if args.events_log:
            try:
                tail = process.stdout.read() or ""
            except (OSError, ValueError):
                tail = ""
            with open(args.events_log, "w", encoding="utf-8") as fh:
                fh.write(f"# chaos profile: {args.fault_spec} "
                         f"(fault spec {spec!r})\n")
                fh.write(tail)
                if resilience is not None:
                    fh.write("\n--- final resilience metrics ---\n")
                    fh.write(json.dumps(resilience, indent=2,
                                        sort_keys=True) + "\n")
            print(f"degradation-event log written to {args.events_log}")
        os.unlink(api_keys_path)
        if cache_dir:
            shutil.rmtree(cache_dir, ignore_errors=True)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(summary, fh, indent=2, sort_keys=True)
            print(f"summary written to {args.json}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write a JSON summary to this file")
    parser.add_argument("--workers", type=int, default=1,
                        help="daemon job workers (default 1: makes the "
                             "responsiveness check adversarial)")
    parser.add_argument("--processes", type=int, default=1,
                        help="pre-fork worker processes; > 1 adds the "
                             "cross-worker warmth steps")
    parser.add_argument("--fault-spec", choices=sorted(FAULT_PROFILES),
                        default=None,
                        help="run a chaos profile instead of the "
                             "normal suite: boot the daemon with "
                             "injected faults and pin degraded-but-"
                             "correct behaviour")
    parser.add_argument("--events-log", metavar="PATH", default=None,
                        help="chaos mode: write the daemon's "
                             "degradation-event log (plus the final "
                             "resilience metrics) to this file")
    args = parser.parse_args()

    if args.fault_spec:
        return run_chaos(args)

    summary: dict = {"steps": {}, "ok": False}
    with tempfile.NamedTemporaryFile(
        "w", suffix=".keys", delete=False
    ) as keyfile:
        keyfile.write(f"# job-smoke credentials\n{SMOKE_KEY}:{SMOKE_TENANT}\n")
        api_keys_path = keyfile.name
    process, base_url = start_daemon(
        args.workers, api_keys_path, processes=args.processes
    )
    client = HttpServiceClient(base_url, timeout_s=30.0, api_key=SMOKE_KEY)
    print(f"daemon up at {base_url} (pid {process.pid}, keyed, "
          f"{args.processes} process(es))")

    try:
        # -- 0. the auth gate is really on ----------------------------
        anonymous = HttpServiceClient(base_url, timeout_s=30.0)
        assert anonymous.healthz()["status"] == "ok"
        try:
            anonymous.jobs()
        except ServiceClientError as exc:
            assert exc.status == 401 and exc.code == "missing-api-key", exc
        else:
            raise AssertionError("keyless request was not denied")
        assert client.jobs()["tracked"] == 0
        summary["steps"]["auth"] = {"ok": True, "tenant": SMOKE_TENANT}
        print("auth: keyless denied with 401, /healthz open, "
              "keyed client served")

        # -- 1. submit → poll → result --------------------------------
        body = {"dataset": {"workload": "taxi", "users": 4, "seed": 7},
                "points": 5, "replications": 1}
        started = time.perf_counter()
        job = client.submit("sweep", body)
        assert job["status"] == "queued", job
        final = client.wait(job["job_id"], timeout_s=120.0)
        elapsed = time.perf_counter() - started
        assert final["status"] == "done", final
        result = final["result"]
        assert result["param"] == "epsilon" and len(result["points"]) == 5
        progress = final["progress"]
        assert progress["completed"] == progress["total"] > 0, progress
        sync = client.sweep(**{"dataset": body["dataset"]},
                            points=5, replications=1)
        assert [p["epsilon"] for p in sync["points"]] == \
            [p["epsilon"] for p in result["points"]]
        summary["steps"]["lifecycle"] = {
            "ok": True, "wall_s": round(elapsed, 3),
            "progress": progress,
        }
        print(f"lifecycle: done in {elapsed:.2f}s, "
              f"progress {progress['completed']}/{progress['total']}")

        # -- 2. responsiveness while a job runs -----------------------
        # Big enough (120 evaluations) that it cannot finish before
        # the probes below and the cancel in step 3 land.
        slow = client.submit("sweep", {
            "dataset": {"workload": "taxi", "users": 8, "seed": 8},
            "points": 30, "replications": 4,
        })
        probes = []
        for _ in range(10):
            t0 = time.perf_counter()
            client.healthz()
            client.status(slow["job_id"])
            probes.append((time.perf_counter() - t0) / 2)
        worst_ms = max(probes) * 1000.0
        summary["steps"]["responsiveness"] = {
            "ok": worst_ms < 250.0, "worst_probe_ms": round(worst_ms, 2),
        }
        assert worst_ms < 250.0, f"probes too slow: {worst_ms:.1f} ms"
        print(f"responsiveness: worst healthz/status probe "
              f"{worst_ms:.1f} ms while sweeping")

        # -- 3. cancel mid-sweep --------------------------------------
        cancelled = client.cancel(slow["job_id"])
        assert cancelled["cancel_requested"] is True
        final = client.wait(slow["job_id"], timeout_s=120.0)
        assert final["status"] == "cancelled", final
        assert "result" not in final
        summary["steps"]["cancel"] = {"ok": True,
                                      "progress": final["progress"]}
        print(f"cancel: job stopped at "
              f"{final['progress']['completed']}"
              f"/{final['progress']['total']} engine jobs")

        # -- 3.5 cross-worker warmth (pre-fork mode only) -------------
        if args.processes > 1:
            # Fleet: distinct pids must answer.  Every request opens a
            # fresh TCP connection, so the kernel spreads them across
            # the workers' listening sockets.
            pids = set()
            deadline = time.monotonic() + 30.0
            while len(pids) < 2 and time.monotonic() < deadline:
                client.healthz()
                pids.add(client.last_headers.get("X-Worker-Pid"))
            assert len(pids) >= 2, (
                f"only one worker answered in 30s: {pids}"
            )
            summary["steps"]["fleet"] = {"ok": True,
                                         "worker_pids": sorted(pids)}
            print(f"fleet: {len(pids)} distinct workers answered "
                  f"(pids {sorted(pids)})")

            # Prime a fresh sweep on whichever worker catches it, then
            # repeat it until a *different* worker answers — that
            # answer must be a response-cache hit served through the
            # shared spill tier: zero new executions, identical body.
            prime_body = {"dataset": {"workload": "taxi", "users": 4,
                                      "seed": 77},
                          "points": 4, "replications": 1}
            primed = client.sweep(**prime_body)
            primer_pid = client.last_headers.get("X-Worker-Pid")
            cross_hit = None
            deadline = time.monotonic() + 60.0
            while cross_hit is None and time.monotonic() < deadline:
                repeat = client.sweep(**prime_body)
                pid = client.last_headers.get("X-Worker-Pid")
                if pid != primer_pid:
                    cache = client.last_headers.get("X-Response-Cache")
                    assert cache == "hit", (
                        f"worker {pid} recomputed instead of hitting "
                        f"the shared response cache ({cache!r})"
                    )
                    assert repeat["engine"]["executions_this_request"] \
                        == 0, repeat["engine"]
                    assert repeat["points"] == primed["points"]
                    cross_hit = pid
            assert cross_hit is not None, \
                "no second worker answered the repeated sweep in 60s"
            summary["steps"]["cross_worker_cache"] = {
                "ok": True, "primed_on": primer_pid,
                "hit_served_by": cross_hit,
            }
            print(f"cross-worker cache: primed on pid {primer_pid}, "
                  f"hit served by pid {cross_hit} (0 executions)")

            # Jobs: submit lands on one worker; polling through the
            # shared job store must work from any sibling.
            job = client.submit("sweep", {
                "dataset": {"workload": "taxi", "users": 4, "seed": 78},
                "points": 5, "replications": 1,
            })
            owner_pid = client.last_headers.get("X-Worker-Pid")
            remote_poll_pid = None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                snapshot = client.status(job["job_id"])
                pid = client.last_headers.get("X-Worker-Pid")
                if pid != owner_pid:
                    remote_poll_pid = pid
                if snapshot["status"] == "done" and remote_poll_pid:
                    break
                time.sleep(0.05)
            final = client.wait(job["job_id"], timeout_s=60.0)
            assert final["status"] == "done", final
            assert remote_poll_pid is not None, (
                "every poll landed on the submitting worker; "
                "cross-worker job visibility unproven"
            )
            assert len(final["result"]["points"]) == 5
            summary["steps"]["cross_worker_jobs"] = {
                "ok": True, "submitted_on": owner_pid,
                "polled_via": remote_poll_pid,
            }
            print(f"cross-worker jobs: submitted on pid {owner_pid}, "
                  f"polled to done via pid {remote_poll_pid}")

        # -- 3.7 stream replay over real sockets ----------------------
        # Single-process only: a live session is worker-local state,
        # and without a session-affine balancer the chunks of a
        # pre-fork daemon would scatter across workers.
        if args.processes == 1:
            chunk_size, n_chunks = 30, 3
            session = "smoke-ride"
            for c in range(n_chunks):
                chunk = [
                    [float((c * chunk_size + i) * 60),
                     37.76 + (c * chunk_size + i) * 1e-4, -122.42]
                    for i in range(chunk_size)
                ]
                out = client.stream_update(
                    session, chunk, window_s=1800.0
                )
                assert out["accepted"] == chunk_size, out
            total = chunk_size * n_chunks
            assert out["updates"] == total, out
            window = client.stream_metrics(session)["window"]
            assert window["span_s"] == 1800.0 and window["records"] > 0
            assert "distortion_m" in window, window
            final = client.stream_close(session)
            assert final["closed"] is True
            assert final["final"]["updates"] == total
            try:
                client.stream_metrics(session)
            except ServiceClientError as exc:
                assert exc.status == 404 \
                    and exc.code == "stream-session-not-found", exc
            else:
                raise AssertionError("closed session still answered")
            streaming = client.metrics()["streaming"]
            assert streaming["flushes"] >= 1, streaming
            summary["steps"]["stream"] = {
                "ok": True, "updates": total,
                "window_records": window["records"],
                "window_distortion_m": round(window["distortion_m"], 1),
            }
            print(f"stream: {total} updates over {n_chunks} chunks, "
                  f"window {window['records']} records at "
                  f"{window['distortion_m']:.0f} m distortion, "
                  "closed clean")
        else:
            summary["steps"]["stream"] = {
                "ok": True, "skipped": "sessions are worker-local; "
                "covered by the single-process run",
            }
            print("stream: skipped in pre-fork mode (worker-local "
                  "sessions; the single-process run covers it)")

        # -- 4. SIGTERM drains and exits 0 ----------------------------
        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=30.0)
        summary["steps"]["sigterm"] = {"ok": returncode == 0,
                                       "returncode": returncode}
        assert returncode == 0, f"daemon exited {returncode} on SIGTERM"
        print("sigterm: daemon drained and exited 0")

        summary["ok"] = True
        print("\njob smoke: all steps passed")
        return 0
    except (AssertionError, ServiceClientError, TimeoutError) as exc:
        summary["error"] = str(exc)
        print(f"\nFAIL: {exc}", file=sys.stderr)
        return 1
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)
        os.unlink(api_keys_path)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(summary, fh, indent=2, sort_keys=True)
            print(f"summary written to {args.json}")


if __name__ == "__main__":
    sys.exit(main())
